"""Hot-path profiling hooks: wall/CPU time, call counts, memory peaks.

A :class:`Profiler` accumulates per-hot-path call statistics — call and
error counts, wall-clock and CPU time (total/min/max), and optionally
the peak traced allocation size of each call (``tracemalloc``).  On top
of the per-call data the snapshot records the *process* peak RSS
(``resource.getrusage``), so a profile always answers both "which stage
is slow" and "how big did we get".

Library hot paths are annotated once, with the dual-use
:func:`profile` hook::

    @profile("fractal.mfdfa")           # decorator form
    def mfdfa(...): ...

    with profile("campaign.cell"):       # context-manager form
        ...

The hook resolves the *active* profiler at call time.  By default there
is none and the annotated function is called straight through — the
disabled path is one module-global read and one branch, so leaving the
hooks on permanently costs well under typical measurement noise (the
test suite holds it to < 5% on a tight loop of small calls).  A
profiler becomes active when a telemetry session is created with
profiling enabled (``enable_telemetry(profile=True)``) or when one is
installed directly with :func:`set_active_profiler`.

Memory tracking (``track_memory=True``) starts ``tracemalloc`` around
each profiled call and records the peak traced size.  It is accurate but
*slow* (every allocation is intercepted), which is why it is a separate
opt-in; under nested profiled calls the inner call resets the shared
peak, so nested per-call peaks are approximate lower bounds.
"""

from __future__ import annotations

import functools
import sys
import time
import tracemalloc
from typing import Callable, Dict, Optional

from ..exceptions import ValidationError

try:  # POSIX only; Windows falls back to tracemalloc-only numbers.
    import resource
except ImportError:  # pragma: no cover - non-POSIX platform
    resource = None  # type: ignore[assignment]

__all__ = [
    "ProfileRecord",
    "Profiler",
    "profile",
    "active_profiler",
    "set_active_profiler",
    "peak_rss_bytes",
]


def peak_rss_bytes() -> Optional[int]:
    """Process-lifetime peak resident set size in bytes (None if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalised
    here so callers never have to care.
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - exercised on mac only
        return int(peak)
    return int(peak) * 1024


class ProfileRecord:
    """Accumulated statistics for one named hot path."""

    __slots__ = (
        "name", "calls", "errors", "wall_total", "wall_min", "wall_max",
        "cpu_total", "mem_peak_bytes",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.errors = 0
        self.wall_total = 0.0
        self.wall_min = float("inf")
        self.wall_max = float("-inf")
        self.cpu_total = 0.0
        self.mem_peak_bytes: Optional[int] = None

    def observe(
        self, wall: float, cpu: float, *,
        mem_peak: Optional[int] = None, error: bool = False,
    ) -> None:
        """Fold one completed call into the record."""
        self.calls += 1
        if error:
            self.errors += 1
        self.wall_total += wall
        if wall < self.wall_min:
            self.wall_min = wall
        if wall > self.wall_max:
            self.wall_max = wall
        self.cpu_total += cpu
        if mem_peak is not None:
            if self.mem_peak_bytes is None or mem_peak > self.mem_peak_bytes:
                self.mem_peak_bytes = mem_peak

    @property
    def wall_mean(self) -> float:
        """Mean wall seconds per call (NaN before the first call)."""
        return self.wall_total / self.calls if self.calls else float("nan")

    def snapshot(self) -> dict:
        """One JSON-able dict describing the current state."""
        empty = self.calls == 0
        return {
            "calls": self.calls,
            "errors": self.errors,
            "wall_total": self.wall_total,
            "wall_mean": None if empty else self.wall_mean,
            "wall_min": None if empty else self.wall_min,
            "wall_max": None if empty else self.wall_max,
            "cpu_total": self.cpu_total,
            "mem_peak_bytes": self.mem_peak_bytes,
        }


class _Measurement:
    """Context manager timing one call against a live profiler."""

    __slots__ = ("_profiler", "_name", "_w0", "_c0", "_tracing")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Measurement":
        if self._profiler.track_memory:
            self._tracing = tracemalloc.is_tracing()
            if not self._tracing:
                tracemalloc.start()
            tracemalloc.reset_peak()
        self._c0 = time.process_time()
        self._w0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._w0
        cpu = time.process_time() - self._c0
        mem_peak: Optional[int] = None
        if self._profiler.track_memory:
            mem_peak = tracemalloc.get_traced_memory()[1]
            if not self._tracing:
                tracemalloc.stop()
        self._profiler.record(self._name).observe(
            wall, cpu, mem_peak=mem_peak, error=exc_type is not None)
        return False


class Profiler:
    """Per-hot-path call profiler; attach to a telemetry session or use alone."""

    def __init__(self, *, enabled: bool = True, track_memory: bool = False) -> None:
        self.enabled = enabled
        self.track_memory = track_memory
        self._records: Dict[str, ProfileRecord] = {}

    def record(self, name: str) -> ProfileRecord:
        """Get or create the record for hot path ``name``."""
        if not name:
            raise ValidationError("profile name must be non-empty")
        rec = self._records.get(name)
        if rec is None:
            rec = ProfileRecord(name)
            self._records[name] = rec
        return rec

    def measure(self, name: str):
        """A context manager that profiles its body under ``name``."""
        return _Measurement(self, name)

    def call(self, name: str, fn: Callable, args: tuple, kwargs: dict):
        """Run ``fn(*args, **kwargs)`` profiled under ``name``."""
        with _Measurement(self, name):
            return fn(*args, **kwargs)

    def get(self, name: str) -> Optional[ProfileRecord]:
        """The record for ``name``, or None if it never ran."""
        return self._records.get(name)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def snapshot(self) -> dict:
        """JSON-able state: process peak RSS + every hot-path record."""
        return {
            "track_memory": self.track_memory,
            "peak_rss_bytes": peak_rss_bytes(),
            "hotpaths": {
                name: self._records[name].snapshot()
                for name in sorted(self._records)
            },
        }

    def reset(self) -> None:
        """Drop every record (new run, fresh numbers)."""
        self._records.clear()


# The active profiler is module state (not threaded through call sites)
# for the same reason the telemetry session is: hot paths must resolve
# it in one global read.  The session layer keeps it in sync with the
# current session's ``profiler`` attribute.
_active: Optional[Profiler] = None


def active_profiler() -> Optional[Profiler]:
    """The profiler hot paths currently report to (None = profiling off)."""
    return _active


def set_active_profiler(profiler: Optional[Profiler]) -> None:
    """Install ``profiler`` as the target of every :func:`profile` hook."""
    global _active
    _active = profiler if (profiler is not None and profiler.enabled) else None


class _ProfileHook:
    """Dual-use hook returned by :func:`profile`: decorator or context manager."""

    __slots__ = ("name", "_measurement")

    def __init__(self, name: str) -> None:
        if not name:
            raise ValidationError("profile name must be non-empty")
        self.name = name

    def __call__(self, fn: Callable) -> Callable:
        name = self.name

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            prof = _active
            if prof is None:
                return fn(*args, **kwargs)
            with _Measurement(prof, name):
                return fn(*args, **kwargs)

        wrapper.__profile_name__ = name
        return wrapper

    def __enter__(self):
        prof = _active
        self._measurement = None if prof is None else _Measurement(prof, self.name)
        if self._measurement is not None:
            self._measurement.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._measurement is not None:
            self._measurement.__exit__(exc_type, exc, tb)
            self._measurement = None
        return False


def profile(name: str) -> _ProfileHook:
    """Mark a hot path: ``@profile("fractal.mfdfa")`` or ``with profile(...)``.

    When no profiler is active the hook is a straight pass-through; when
    one is (telemetry session with ``profile=True``), each call records
    wall/CPU time, call count and — with memory tracking on — the peak
    traced allocation size.
    """
    return _ProfileHook(name)
