"""Live HTTP status/metrics surface for running campaigns and watches.

A threaded stdlib HTTP server (:class:`StatusServer`) exposing three
read-only endpoints on localhost while a run is in flight:

* ``/healthz`` — liveness: ``{"status": "ok"}``.
* ``/status`` — one JSON document (schema ``repro.status/1``): campaign
  progress (units done/failed/resumed, per-cell counts), an EWMA-based
  ETA, journal/resume state including the last-progress heartbeat,
  selected pool/campaign counters, the latest worker resource snapshot
  and the self-watch digest.
* ``/metrics`` — the live telemetry session rendered through the
  existing Prometheus/OpenMetrics exporter
  (:func:`~repro.obs.export.session_to_prometheus`).
* ``/timeline`` — the in-memory ring of the attached
  :class:`~repro.obs.timeline.TimelineRecorder` (most recent frames and
  annotations), when a campaign runs with ``--timeline``.

Progress state lives in a :class:`StatusBoard` — a lock-protected,
plain-data accumulator the campaign runner updates from its
``on_result`` path.  The split keeps the server dumb (it only *reads*)
and the producer fast (an update is a dict write under a lock), and
lets tests drive the board without any HTTP at all.

Everything is observation: neither the board nor the server touches
work items, seeds or results, so a campaign run with the control plane
on is bit-identical to one without it (enforced in tests).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Mapping, Optional

from ..exceptions import ValidationError
from .export import session_to_prometheus
from .logger import get_logger
from . import session as _session

__all__ = [
    "STATUS_SCHEMA",
    "StatusBoard",
    "StatusServer",
]

STATUS_SCHEMA = "repro.status/1"

_log = get_logger("obs.statusd")

# Counter namespaces surfaced verbatim in /status — the resilience and
# campaign numbers an operator tails first.  "scoreboard." carries the
# per-detector tournament gauges published after a grid campaign.
_STATUS_COUNTER_PREFIXES = ("perf.pool.", "campaign.", "resources.",
                            "obs.flight_dumps", "scoreboard.")


class StatusBoard:
    """Thread-safe progress accumulator behind the ``/status`` endpoint.

    The producer (campaign runner, watch loop) calls :meth:`begin`,
    :meth:`unit_finished`/:meth:`unit_failed`, :meth:`update` and
    :meth:`finish`; any thread may call :meth:`snapshot`.  The ETA is an
    exponentially weighted mean of inter-completion wall intervals times
    the remaining unit count — crude, but it needs no model of the work
    and converges as fast as the EWMA does.
    """

    def __init__(self, *, kind: str = "campaign", ewma_alpha: float = 0.3,
                 clock: Callable[[], float] = time.time) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValidationError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.kind = kind
        self._alpha = ewma_alpha
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "idle"
        self._started_at: Optional[float] = None
        self._total_units = 0
        self._done = 0
        self._failed = 0
        self._resumed = 0
        self._cells: Dict[str, dict] = {}
        self._detectors: Dict[str, dict] = {}
        self._ewma_interval: Optional[float] = None
        self._last_finish: Optional[float] = None
        self._last_progress_at: Optional[float] = None
        self._fields: Dict[str, object] = {}

    # -- producer API ----------------------------------------------------------

    def begin(self, *, total_units: int,
              cells: Optional[Mapping[str, int]] = None,
              resumed: int = 0, **fields) -> None:
        """Open the run: totals, per-cell unit counts, resume context."""
        with self._lock:
            self._state = "running"
            self._started_at = self._clock()
            self._total_units = int(total_units)
            self._resumed = int(resumed)
            self._cells = {
                str(name): {"total": int(total), "done": 0, "failed": 0}
                for name, total in (cells or {}).items()
            }
            self._detectors = {}
            self._fields.update(fields)

    def unit_finished(self, cell: Optional[str] = None,
                      detector: Optional[str] = None,
                      alarmed: Optional[bool] = None) -> None:
        """Record one completed unit (updates progress, EWMA, heartbeat).

        ``detector``/``alarmed`` feed the live per-detector tournament
        tallies in ``/status`` — optional, so non-grid producers (watch
        loops, older callers) keep working unchanged.
        """
        now = self._clock()
        with self._lock:
            self._done += 1
            self._last_progress_at = now
            if cell is not None and cell in self._cells:
                self._cells[cell]["done"] += 1
            if detector is not None:
                tally = self._detectors.setdefault(
                    str(detector), {"done": 0, "alarms": 0})
                tally["done"] += 1
                if alarmed:
                    tally["alarms"] += 1
            anchor = self._last_finish
            if anchor is None:
                anchor = self._started_at
            if anchor is not None:
                interval = max(0.0, now - anchor)
                if self._ewma_interval is None:
                    self._ewma_interval = interval
                else:
                    self._ewma_interval = (self._alpha * interval
                                           + (1 - self._alpha)
                                           * self._ewma_interval)
            self._last_finish = now

    def unit_failed(self, cell: Optional[str] = None,
                    error: Optional[str] = None) -> None:
        """Record one permanently failed unit."""
        with self._lock:
            self._failed += 1
            if cell is not None and cell in self._cells:
                self._cells[cell]["failed"] += 1
            if error is not None:
                self._fields["last_error"] = error

    def update(self, **fields) -> None:
        """Merge free-form fields into the snapshot (journal path, …)."""
        with self._lock:
            self._fields.update(fields)

    def finish(self, status: str, **fields) -> None:
        """Close the run with a final status string."""
        with self._lock:
            self._state = status
            self._fields.update(fields)

    # -- consumer API ----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able progress state (one consistent read)."""
        with self._lock:
            remaining = max(
                0, self._total_units - self._resumed - self._done - self._failed)
            eta = (None if self._ewma_interval is None or remaining == 0
                   else self._ewma_interval * remaining)
            rate = (None if not self._ewma_interval
                    else 1.0 / self._ewma_interval)
            return {
                "kind": self.kind,
                "state": self._state,
                "started_at": self._started_at,
                "total_units": self._total_units,
                "units_done": self._done,
                "units_failed": self._failed,
                "units_resumed": self._resumed,
                "units_remaining": remaining,
                "cells": {name: dict(counts)
                          for name, counts in self._cells.items()},
                "detectors": {name: dict(counts)
                              for name, counts in self._detectors.items()},
                "eta_seconds": eta,
                "units_per_second": rate,
                "last_progress_at": self._last_progress_at,
                **dict(self._fields),
            }


def _status_counters() -> Dict[str, float]:
    """The /status view of the live metrics: selected counters only."""
    session = _session.current_session()
    if not session.enabled:
        return {}
    out: Dict[str, float] = {}
    for name in list(session.metrics._instruments):
        if not name.startswith(_STATUS_COUNTER_PREFIXES):
            continue
        instrument = session.metrics.get(name)
        value = getattr(instrument, "value", None)
        if value is not None:
            out[name] = value
    return dict(sorted(out.items()))


class _StatusHandler(BaseHTTPRequestHandler):
    """Routes GETs; everything is built from a snapshot per request."""

    server_version = "repro-statusd/1"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - stdlib API
        path = self.path.split("?", 1)[0]
        server: "StatusServer" = self.server.control  # type: ignore[attr-defined]
        if path == "/healthz":
            self._reply(200, json.dumps({"status": "ok"}) + "\n",
                        "application/json")
        elif path == "/status":
            self._reply(200, json.dumps(server.status_payload(),
                                        sort_keys=True) + "\n",
                        "application/json")
        elif path == "/metrics":
            self._reply(200, server.metrics_payload(),
                        "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/timeline":
            self._reply(200, json.dumps(server.timeline_payload(),
                                        sort_keys=True) + "\n",
                        "application/json")
        else:
            self._reply(404, json.dumps(
                {"error": f"unknown path {path!r}",
                 "paths": ["/healthz", "/status", "/metrics",
                           "/timeline"]}) + "\n",
                "application/json")

    def _reply(self, code: int, body: str, content_type: str) -> None:
        data = body.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _log.debug("statusd request", detail=format % args)


class StatusServer:
    """Threaded localhost HTTP server for ``/healthz``, ``/status``,
    ``/metrics`` and ``/timeline``.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`
    after :meth:`start`).  The serve loop runs on one named daemon
    thread; per-request threads are daemons too, so :meth:`stop` —
    ``shutdown`` + ``server_close`` + join — leaves nothing running.

    ``board`` and ``resources`` are optional read-only data sources;
    the metrics endpoint always renders the *current* telemetry session
    so it keeps working across session swaps.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 board: Optional[StatusBoard] = None,
                 resources=None, timeline=None) -> None:
        if not 0 <= int(port) <= 65535:
            raise ValidationError(f"port must be in [0, 65535], got {port}")
        self.host = host
        self.board = board
        self.resources = resources
        self.timeline = timeline
        self._requested_port = int(port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- payloads (also used directly by tests) --------------------------------

    def status_payload(self) -> dict:
        """The full ``/status`` JSON document."""
        session = _session.current_session()
        payload: dict = {
            "schema": STATUS_SCHEMA,
            "time": time.time(),
            "trace_id": getattr(session, "trace_id", None),
            "counters": _status_counters(),
        }
        if self.board is not None:
            payload.update(self.board.snapshot())
        if self.resources is not None:
            payload["resources"] = self.resources.latest()
        return payload

    def timeline_payload(self) -> dict:
        """The ``/timeline`` JSON document: the recorder's ring."""
        if self.timeline is None:
            return {"schema": None, "records": [],
                    "note": "no timeline recorder attached — run with "
                            "--timeline"}
        from .timeline import TIMELINE_SCHEMA

        return {"schema": TIMELINE_SCHEMA,
                "records": self.timeline.records()}

    def metrics_payload(self) -> str:
        """The ``/metrics`` OpenMetrics text for the current session.

        A scrape races the single-threaded producer; on the (rare)
        mutation-during-snapshot error it simply retries — the registry
        is append-only, so a retry converges.
        """
        last_error: Optional[Exception] = None
        for _ in range(3):
            try:
                return session_to_prometheus(_session.current_session())
            except RuntimeError as exc:  # pragma: no cover - timing window
                last_error = exc
        _log.warning("metrics scrape raced the producer; serving empty",
                     error=str(last_error))  # pragma: no cover
        return "# EOF\n"  # pragma: no cover

    # -- lifecycle -------------------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        """Bound port once started, else None."""
        if self._httpd is None:
            return None
        return self._httpd.server_address[1]

    @property
    def url(self) -> Optional[str]:
        """Base URL once started, else None."""
        port = self.port
        return None if port is None else f"http://{self.host}:{port}"

    def start(self) -> int:
        """Bind and serve on a background thread; returns the bound port."""
        if self._httpd is not None:
            return self.port  # type: ignore[return-value]
        httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), _StatusHandler)
        httpd.daemon_threads = True
        httpd.control = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="repro-statusd", daemon=True,
            kwargs={"poll_interval": 0.05})
        self._thread.start()
        _log.info("status server listening", url=self.url)
        return self.port  # type: ignore[return-value]

    def stop(self, *, timeout: float = 5.0) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "StatusServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
