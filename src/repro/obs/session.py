"""The telemetry session: one process-wide bundle of metrics + spans + events.

Instrumented library code (simulator, pipeline, campaign runner) talks
to *the current session* through the module-level helpers re-exported
from :mod:`repro.obs` — it never owns telemetry state itself.  The
default session is **disabled**: every helper degrades to a no-op (null
instruments, a shared null span, dropped events), so an un-instrumented
caller pays effectively nothing.  The CLI (or a test, or an embedding
application) turns telemetry on for the duration of a run with
:func:`enable_telemetry` / :func:`disable_telemetry` or the
:func:`telemetry_session` context manager.

Besides metrics and spans the session keeps an ordered **event log** —
discrete occurrences worth forensic attention (crash, alarm,
rejuvenation, allocation-failure onset).  Events carry a wall-clock
timestamp plus free-form fields and end up in the run manifest's
``events.jsonl``.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, List, Optional

from .logger import get_logger
from .metrics import MetricsRegistry, NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM, NULL_TIMER
from .profile import Profiler, set_active_profiler
from .spans import NULL_SPAN, SpanCollector

__all__ = [
    "TelemetrySession",
    "current_session",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry_enabled",
    "telemetry_session",
    "counter",
    "gauge",
    "histogram",
    "timer",
    "span",
    "record_event",
]


class TelemetrySession:
    """Metrics registry + span collector + event log for one run.

    ``profile=True`` additionally attaches a
    :class:`~repro.obs.profile.Profiler`, so every :func:`profile`-marked
    hot path reports per-call wall/CPU statistics into the session;
    ``profile_memory=True`` also traces each call's peak allocation size
    (accurate but slow — ``tracemalloc`` intercepts every allocation).
    """

    def __init__(
        self, *, enabled: bool = True,
        profile: bool = False, profile_memory: bool = False,
    ) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        self.spans = SpanCollector(enabled=enabled)
        self.profiler: Optional[Profiler] = (
            Profiler(track_memory=profile_memory)
            if enabled and (profile or profile_memory) else None
        )
        self.events: List[dict] = []
        self.started_at = time.time()
        # Stamped by repro.obs.ops.trace_scope when a campaign mints a trace.
        self.trace_id: Optional[str] = None

    def record_event(self, kind: str, **fields) -> None:
        """Append one discrete event (kind + fields + wall timestamp)."""
        if not self.enabled:
            return
        event = {"wall_time": time.time(), "kind": kind}
        event.update(fields)
        self.events.append(event)

    def events_of(self, kind: str) -> List[dict]:
        """Every recorded event of one kind, in order."""
        return [e for e in self.events if e["kind"] == kind]

    def summary(self) -> Dict[str, object]:
        """Compact JSON-able digest (used by heartbeat logs and tests)."""
        return {
            "enabled": self.enabled,
            "trace_id": self.trace_id,
            "n_metrics": len(self.metrics),
            "n_spans": len(self.spans.records),
            "n_events": len(self.events),
            "uptime_seconds": time.time() - self.started_at,
        }


_DISABLED = TelemetrySession(enabled=False)
_session: TelemetrySession = _DISABLED


def _install(session: TelemetrySession) -> None:
    """Make ``session`` current and point the profile hooks at it."""
    global _session
    _session = session
    set_active_profiler(session.profiler)


def current_session() -> TelemetrySession:
    """The active session (the shared disabled one when telemetry is off)."""
    return _session


def telemetry_enabled() -> bool:
    """Whether a live session is collecting."""
    return _session.enabled


def enable_telemetry(
    *, profile: bool = False, profile_memory: bool = False,
) -> TelemetrySession:
    """Install and return a fresh live session (optionally profiling)."""
    _install(TelemetrySession(
        enabled=True, profile=profile, profile_memory=profile_memory))
    get_logger("obs").debug("telemetry enabled")
    return _session


def disable_telemetry() -> None:
    """Return to the shared disabled session."""
    _install(_DISABLED)


@contextlib.contextmanager
def telemetry_session(*, profile: bool = False, profile_memory: bool = False):
    """Enable telemetry for a ``with`` block, restoring the previous session.

    Yields the fresh live session; embedders and tests use this to scope
    collection without touching global state by hand.
    """
    previous = _session
    fresh = TelemetrySession(
        enabled=True, profile=profile, profile_memory=profile_memory)
    _install(fresh)
    try:
        yield fresh
    finally:
        _install(previous)


# -- call-site helpers (hot-path friendly) -------------------------------------

def counter(name: str):
    """The current session's counter ``name`` (null when disabled)."""
    s = _session
    return s.metrics.counter(name) if s.enabled else NULL_COUNTER


def gauge(name: str):
    """The current session's gauge ``name`` (null when disabled)."""
    s = _session
    return s.metrics.gauge(name) if s.enabled else NULL_GAUGE


def histogram(name: str):
    """The current session's histogram ``name`` (null when disabled)."""
    s = _session
    return s.metrics.histogram(name) if s.enabled else NULL_HISTOGRAM


def timer(name: str):
    """The current session's timer ``name`` (null when disabled)."""
    s = _session
    return s.metrics.timer(name) if s.enabled else NULL_TIMER


def span(name: str, **attrs):
    """A span on the current session (shared no-op when disabled)."""
    s = _session
    return s.spans.span(name, **attrs) if s.enabled else NULL_SPAN


def record_event(kind: str, **fields) -> None:
    """Record a discrete event on the current session (no-op when disabled)."""
    _session.record_event(kind, **fields)
