"""Shared inline-SVG chart/page primitives for the HTML dashboards.

Internal to :mod:`repro.obs` — the public surface is the renderers in
:mod:`repro.obs.dashboard`.  Everything here produces deterministic
markup (no timestamps, no randomness) so dashboard output can be
golden-tested byte-for-byte.

The single-series :func:`_line_chart`, the page chrome (:data:`_STYLE`,
:data:`_SCRIPT`, :func:`_page`), tiles, tick/decimation helpers and the
number formatters were extracted verbatim from ``dashboard.py``;
:func:`multi_line_chart` is the multi-series variant added for the
timeline panels (per-worker RSS, throughput overlays).
"""

from __future__ import annotations

import html
import json
import math
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "multi_line_chart",
]


# -- generic plumbing ----------------------------------------------------------

def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _fmt(value: Optional[float], unit: str = "") -> str:
    """Compact human figure: 1,284 / 12.9K / 4.2M / 1.3G."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "—"
    number = float(value)
    for divisor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(number) >= divisor:
            return f"{number / divisor:.1f}{suffix}{unit}"
    if number == int(number):
        return f"{int(number):,}{unit}"
    return f"{number:.3g}{unit}"


def _fmt_time(seconds: Optional[float]) -> str:
    if seconds is None or (isinstance(seconds, float) and math.isnan(seconds)):
        return "—"
    return f"{float(seconds):,.0f}s"


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Clean-number axis ticks covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n - 1, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = mult * magnitude
        if step >= raw:
            break
    start = math.ceil(lo / step) * step
    ticks = []
    t = start
    while t <= hi + 1e-9 * step:
        ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def _decimate(times: Sequence[float], values: Sequence[float],
              max_buckets: int = 420) -> Tuple[List[float], List[float]]:
    """Per-bucket (min, max) decimation preserving excursions."""
    n = len(times)
    if n <= 2 * max_buckets:
        return list(times), list(values)
    out_t: List[float] = []
    out_v: List[float] = []
    per = n / max_buckets
    for b in range(max_buckets):
        i0, i1 = int(b * per), min(int((b + 1) * per), n)
        if i0 >= i1:
            continue
        chunk_v = values[i0:i1]
        chunk_t = times[i0:i1]
        lo = min(range(len(chunk_v)), key=chunk_v.__getitem__)
        hi = max(range(len(chunk_v)), key=chunk_v.__getitem__)
        for j in sorted({lo, hi}):
            out_t.append(chunk_t[j])
            out_v.append(chunk_v[j])
    return out_t, out_v


# -- SVG line chart ------------------------------------------------------------

_CHART_W, _CHART_H = 860, 240
_PAD_L, _PAD_R, _PAD_T, _PAD_B = 64, 16, 18, 30


class _Marker:
    """A labelled vertical time marker (alarm, crash, alert firing)."""

    def __init__(self, t: float, label: str, css: str, *, dot: bool = False,
                 title: str = "") -> None:
        self.t = t
        self.label = label
        self.css = css
        self.dot = dot        # tick on the baseline instead of a full line
        self.title = title or label


def _line_chart(
    chart_id: str,
    title: str,
    times: Sequence[float],
    values: Sequence[float],
    *,
    series_css: str = "s1",
    y_format: str = "si",
    markers: Sequence[_Marker] = (),
    baseline: Optional[float] = None,
    baseline_label: str = "",
    x_max: Optional[float] = None,
) -> str:
    """One single-series line chart with time markers, as an HTML block."""
    if not times:
        return (f'<figure class="chart"><figcaption>{_esc(title)}'
                f'</figcaption><p class="empty">no data</p></figure>')
    dt, dv = _decimate(list(times), list(values))
    x_lo, x_hi = float(min(dt)), float(max(dt))
    if x_max is not None:
        x_hi = max(x_hi, float(x_max))
    for m in markers:
        x_hi = max(x_hi, m.t)
    y_vals = list(dv) + ([baseline] if baseline is not None else [])
    y_lo, y_hi = float(min(y_vals)), float(max(y_vals))
    if y_hi == y_lo:
        y_hi, y_lo = y_hi + 1.0, y_lo - 1.0
    span = y_hi - y_lo
    y_lo -= 0.06 * span
    y_hi += 0.06 * span

    plot_w = _CHART_W - _PAD_L - _PAD_R
    plot_h = _CHART_H - _PAD_T - _PAD_B

    def sx(t: float) -> float:
        return _PAD_L + plot_w * (t - x_lo) / (x_hi - x_lo or 1.0)

    def sy(v: float) -> float:
        return _PAD_T + plot_h * (1.0 - (v - y_lo) / (y_hi - y_lo))

    parts: List[str] = []
    parts.append(
        f'<svg viewBox="0 0 {_CHART_W} {_CHART_H}" role="img" '
        f'aria-label="{_esc(title)}" data-chart="{_esc(chart_id)}">')
    # gridlines + y ticks
    for tick in _ticks(y_lo, y_hi, 5):
        if tick < y_lo or tick > y_hi:
            continue
        y = sy(tick)
        label = _fmt(tick) if y_format == "si" else f"{tick:g}"
        parts.append(f'<line class="grid" x1="{_PAD_L}" y1="{y:.1f}" '
                     f'x2="{_CHART_W - _PAD_R}" y2="{y:.1f}"/>')
        parts.append(f'<text class="tick" x="{_PAD_L - 6}" y="{y + 3.5:.1f}" '
                     f'text-anchor="end">{label}</text>')
    # x ticks
    for tick in _ticks(x_lo, x_hi, 6):
        if tick < x_lo or tick > x_hi:
            continue
        x = sx(tick)
        parts.append(f'<text class="tick" x="{x:.1f}" '
                     f'y="{_CHART_H - _PAD_B + 16}" '
                     f'text-anchor="middle">{_fmt(tick)}s</text>')
    # baseline axis
    parts.append(f'<line class="axis" x1="{_PAD_L}" '
                 f'y1="{_CHART_H - _PAD_B}" x2="{_CHART_W - _PAD_R}" '
                 f'y2="{_CHART_H - _PAD_B}"/>')
    # calibrated baseline (reference line)
    if baseline is not None and y_lo <= baseline <= y_hi:
        y = sy(baseline)
        parts.append(f'<line class="ref" x1="{_PAD_L}" y1="{y:.1f}" '
                     f'x2="{_CHART_W - _PAD_R}" y2="{y:.1f}"/>')
        if baseline_label:
            parts.append(f'<text class="ref-label" '
                         f'x="{_CHART_W - _PAD_R - 4}" y="{y - 5:.1f}" '
                         f'text-anchor="end">{_esc(baseline_label)}</text>')
    # the series
    points = " ".join(f"{sx(t):.1f},{sy(v):.1f}" for t, v in zip(dt, dv))
    parts.append(f'<polyline class="line {series_css}" points="{points}"/>')
    # markers: full-height event lines with top labels, or baseline ticks
    seen_labels = set()
    for m in markers:
        x = sx(m.t)
        if m.dot:
            parts.append(
                f'<circle class="mark {m.css}" cx="{x:.1f}" '
                f'cy="{_CHART_H - _PAD_B:.1f}" r="4">'
                f'<title>{_esc(m.title)}</title></circle>')
            continue
        parts.append(f'<line class="event {m.css}" x1="{x:.1f}" '
                     f'y1="{_PAD_T}" x2="{x:.1f}" '
                     f'y2="{_CHART_H - _PAD_B}"><title>{_esc(m.title)}'
                     f'</title></line>')
        if m.label not in seen_labels:
            seen_labels.add(m.label)
            anchor = "start" if x < _CHART_W - 90 else "end"
            dx = 4 if anchor == "start" else -4
            parts.append(f'<text class="event-label {m.css}" '
                         f'x="{x + dx:.1f}" y="{_PAD_T + 10}" '
                         f'text-anchor="{anchor}">{_esc(m.label)}</text>')
    # hover layer (crosshair + tooltip, driven by the embedded script)
    parts.append(f'<line class="cursor" x1="0" y1="{_PAD_T}" x2="0" '
                 f'y2="{_CHART_H - _PAD_B}" visibility="hidden"/>')
    parts.append('<circle class="cursor-dot" r="4" visibility="hidden"/>')
    parts.append(f'<rect class="hover-target" x="{_PAD_L}" y="{_PAD_T}" '
                 f'width="{plot_w}" height="{plot_h}" fill="none" '
                 f'pointer-events="all"/>')
    parts.append("</svg>")
    payload = {
        "t": [round(float(t), 4) for t in dt],
        "v": [float(v) for v in dv],
        "x0": x_lo, "x1": x_hi, "y0": y_lo, "y1": y_hi,
        "padL": _PAD_L, "padR": _PAD_R, "padT": _PAD_T, "padB": _PAD_B,
        "w": _CHART_W, "h": _CHART_H, "yFormat": y_format,
    }
    return (
        f'<figure class="chart"><figcaption>{_esc(title)}</figcaption>'
        + "".join(parts)
        + f'<script type="application/json" data-for="{_esc(chart_id)}">'
        + json.dumps(payload)
        + "</script>"
        + '<div class="tooltip" hidden></div></figure>'
    )


# Series classes cycled over multi-series charts and legends.
_SERIES_CYCLE = ("s1", "s3", "s2", "s4", "s5", "s6")


def multi_line_chart(
    chart_id: str,
    title: str,
    series: Sequence[Tuple[str, Sequence[float], Sequence[float]]],
    *,
    y_format: str = "si",
    markers: Sequence[_Marker] = (),
    x_max: Optional[float] = None,
) -> str:
    """Several series on shared axes, with a legend, as an HTML block.

    ``series`` is a sequence of ``(label, times, values)`` triples; the
    six palette classes are cycled over them.  Unlike
    :func:`_line_chart` there is no hover layer — static polylines with
    ``<title>`` tooltips keep the multi-series markup small.
    """
    series = [(label, list(ts), list(vs)) for label, ts, vs in series
              if len(ts)]
    if not series:
        return (f'<figure class="chart"><figcaption>{_esc(title)}'
                f'</figcaption><p class="empty">no data</p></figure>')
    dec = [(label,) + _decimate(ts, vs) for label, ts, vs in series]
    x_lo = min(min(ts) for _, ts, _ in dec)
    x_hi = max(max(ts) for _, ts, _ in dec)
    if x_max is not None:
        x_hi = max(x_hi, float(x_max))
    for m in markers:
        x_hi = max(x_hi, m.t)
    y_lo = min(min(vs) for _, _, vs in dec)
    y_hi = max(max(vs) for _, _, vs in dec)
    if y_hi == y_lo:
        y_hi, y_lo = y_hi + 1.0, y_lo - 1.0
    span = y_hi - y_lo
    y_lo -= 0.06 * span
    y_hi += 0.06 * span

    plot_w = _CHART_W - _PAD_L - _PAD_R
    plot_h = _CHART_H - _PAD_T - _PAD_B

    def sx(t: float) -> float:
        return _PAD_L + plot_w * (t - x_lo) / (x_hi - x_lo or 1.0)

    def sy(v: float) -> float:
        return _PAD_T + plot_h * (1.0 - (v - y_lo) / (y_hi - y_lo))

    parts: List[str] = []
    parts.append(
        f'<svg viewBox="0 0 {_CHART_W} {_CHART_H}" role="img" '
        f'aria-label="{_esc(title)}" data-chart="{_esc(chart_id)}">')
    for tick in _ticks(y_lo, y_hi, 5):
        if tick < y_lo or tick > y_hi:
            continue
        y = sy(tick)
        label = _fmt(tick) if y_format == "si" else f"{tick:g}"
        parts.append(f'<line class="grid" x1="{_PAD_L}" y1="{y:.1f}" '
                     f'x2="{_CHART_W - _PAD_R}" y2="{y:.1f}"/>')
        parts.append(f'<text class="tick" x="{_PAD_L - 6}" y="{y + 3.5:.1f}" '
                     f'text-anchor="end">{label}</text>')
    for tick in _ticks(x_lo, x_hi, 6):
        if tick < x_lo or tick > x_hi:
            continue
        x = sx(tick)
        parts.append(f'<text class="tick" x="{x:.1f}" '
                     f'y="{_CHART_H - _PAD_B + 16}" '
                     f'text-anchor="middle">{_fmt(tick)}s</text>')
    parts.append(f'<line class="axis" x1="{_PAD_L}" '
                 f'y1="{_CHART_H - _PAD_B}" x2="{_CHART_W - _PAD_R}" '
                 f'y2="{_CHART_H - _PAD_B}"/>')
    legend: List[str] = []
    for i, (label, ts, vs) in enumerate(dec):
        css = _SERIES_CYCLE[i % len(_SERIES_CYCLE)]
        points = " ".join(f"{sx(t):.1f},{sy(v):.1f}"
                          for t, v in zip(ts, vs))
        parts.append(f'<polyline class="line {css}" points="{points}">'
                     f'<title>{_esc(label)}</title></polyline>')
        legend.append(f'<span><span class="swatch {css}"></span>'
                      f'{_esc(label)}</span>')
    seen_labels = set()
    for m in markers:
        x = sx(m.t)
        if m.dot:
            parts.append(
                f'<circle class="mark {m.css}" cx="{x:.1f}" '
                f'cy="{_CHART_H - _PAD_B:.1f}" r="4">'
                f'<title>{_esc(m.title)}</title></circle>')
            continue
        parts.append(f'<line class="event {m.css}" x1="{x:.1f}" '
                     f'y1="{_PAD_T}" x2="{x:.1f}" '
                     f'y2="{_CHART_H - _PAD_B}"><title>{_esc(m.title)}'
                     f'</title></line>')
        if m.label not in seen_labels:
            seen_labels.add(m.label)
            anchor = "start" if x < _CHART_W - 90 else "end"
            dx = 4 if anchor == "start" else -4
            parts.append(f'<text class="event-label {m.css}" '
                         f'x="{x + dx:.1f}" y="{_PAD_T + 10}" '
                         f'text-anchor="{anchor}">{_esc(m.label)}</text>')
    parts.append("</svg>")
    return (f'<figure class="chart"><figcaption>{_esc(title)}</figcaption>'
            + "".join(parts)
            + f'<div class="legend">{"".join(legend)}</div></figure>')


# -- shared page chrome --------------------------------------------------------

_STYLE = """
:root { color-scheme: light dark; }
.viz-root {
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-3: #1baf7a;
  --series-2: #8a63d2; --series-4: #d03b9b;
  --series-5: #c98a1b; --series-6: #5a8a99;
  --status-warning: #fab219; --status-serious: #ec835a;
  --status-critical: #d03b3b; --status-good: #0ca30c;
  background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  margin: 0; padding: 24px; min-height: 100vh; box-sizing: border-box;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-3: #199e70;
    --series-2: #9d7ae0; --series-4: #df58b4;
    --series-5: #d99a2b; --series-6: #6fa3b4;
  }
}
.viz-root h1 { font-size: 20px; font-weight: 600; margin: 0 0 2px; }
.viz-root .sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 12px 16px; min-width: 128px;
}
.tile .label { font-size: 12px; color: var(--text-secondary); margin-bottom: 4px; }
.tile .value { font-size: 24px; font-weight: 600; }
.tile .note { font-size: 11px; color: var(--muted); margin-top: 2px; }
.tile.alarmed .value { color: var(--status-critical); }
.tile.quiet .value { color: var(--status-good); }
.chart {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 14px 16px 8px; margin: 0 0 16px;
  position: relative; max-width: 900px;
}
.chart figcaption { font-size: 13px; font-weight: 600; margin-bottom: 6px; }
.chart svg { width: 100%; height: auto; display: block; }
.chart .empty { color: var(--muted); font-size: 13px; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--baseline); stroke-width: 1; }
svg .tick { fill: var(--muted); font-size: 10px;
  font-variant-numeric: tabular-nums; }
svg .line { fill: none; stroke-width: 2; stroke-linejoin: round;
  stroke-linecap: round; }
svg .line.s1 { stroke: var(--series-1); }
svg .line.s3 { stroke: var(--series-3); }
svg .line.s2 { stroke: var(--series-2); }
svg .line.s4 { stroke: var(--series-4); }
svg .line.s5 { stroke: var(--series-5); }
svg .line.s6 { stroke: var(--series-6); }
.legend { display: flex; flex-wrap: wrap; gap: 4px 16px; margin: 8px 0 4px;
  font-size: 12px; color: var(--text-secondary); }
.legend .swatch { display: inline-block; width: 14px; height: 3px;
  vertical-align: middle; margin-right: 5px; border-radius: 2px; }
.swatch.s1 { background: var(--series-1); }
.swatch.s3 { background: var(--series-3); }
.swatch.s2 { background: var(--series-2); }
.swatch.s4 { background: var(--series-4); }
.swatch.s5 { background: var(--series-5); }
.swatch.s6 { background: var(--series-6); }
svg .ref { stroke: var(--muted); stroke-width: 1; stroke-dasharray: 5 4; }
svg .ref-label { fill: var(--muted); font-size: 10px; }
svg .event { stroke-width: 1.5; }
svg .event-label { font-size: 10px; font-weight: 600; }
svg .event.alarm, svg .event-label.alarm { stroke: var(--status-serious); }
svg .event-label.alarm { fill: var(--status-serious); stroke: none; }
svg .event.crash { stroke: var(--status-critical); }
svg .event-label.crash { fill: var(--status-critical); stroke: none; }
svg .mark { stroke: var(--surface-1); stroke-width: 2; }
svg .mark.warning { fill: var(--status-warning); }
svg .mark.critical { fill: var(--status-critical); }
svg .mark.info { fill: var(--muted); }
svg .dot { stroke: var(--surface-1); stroke-width: 2; fill: var(--series-1); }
svg .cursor { stroke: var(--baseline); stroke-width: 1; }
svg .cursor-dot { fill: var(--series-1); stroke: var(--surface-1);
  stroke-width: 2; }
.tooltip {
  position: absolute; pointer-events: none; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 6px; padding: 4px 8px;
  font-size: 11px; color: var(--text-primary); white-space: nowrap;
  box-shadow: 0 2px 8px rgba(0,0,0,0.12); z-index: 2;
}
table.data {
  border-collapse: collapse; font-size: 13px; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 10px; margin-bottom: 16px;
}
table.data th, table.data td { padding: 6px 12px; text-align: left; }
table.data td.num { text-align: right; font-variant-numeric: tabular-nums; }
table.data thead th { color: var(--text-secondary); font-weight: 600;
  font-size: 12px; border-bottom: 1px solid var(--grid); }
table.data tbody tr + tr td { border-top: 1px solid var(--grid); }
.sev { font-weight: 600; }
.sev.critical { color: var(--status-critical); }
.sev.warning { color: var(--text-primary); }
.sev.info { color: var(--text-secondary); }
details.tableview { margin-bottom: 16px; }
details.tableview summary { cursor: pointer; font-size: 13px;
  color: var(--text-secondary); margin-bottom: 8px; }
.footer { color: var(--muted); font-size: 11px; margin-top: 24px; }
"""

_SCRIPT = """
document.querySelectorAll('figure.chart').forEach(function (fig) {
  var svg = fig.querySelector('svg[data-chart]');
  if (!svg) return;
  var dataEl = fig.querySelector('script[type="application/json"]');
  if (!dataEl) return;
  var d = JSON.parse(dataEl.textContent);
  var tip = fig.querySelector('.tooltip');
  var cursor = svg.querySelector('.cursor');
  var dot = svg.querySelector('.cursor-dot');
  var target = svg.querySelector('.hover-target');
  function fmt(x) {
    var a = Math.abs(x);
    if (a >= 1e9) return (x / 1e9).toFixed(2) + 'G';
    if (a >= 1e6) return (x / 1e6).toFixed(2) + 'M';
    if (a >= 1e3) return (x / 1e3).toFixed(1) + 'K';
    return (Math.round(x * 1000) / 1000).toString();
  }
  function nearest(t) {
    var lo = 0, hi = d.t.length - 1;
    while (hi - lo > 1) {
      var mid = (lo + hi) >> 1;
      if (d.t[mid] < t) lo = mid; else hi = mid;
    }
    return (t - d.t[lo] < d.t[hi] - t) ? lo : hi;
  }
  target.addEventListener('mousemove', function (ev) {
    var box = svg.getBoundingClientRect();
    var scale = box.width / d.w;
    var px = (ev.clientX - box.left) / scale;
    var frac = (px - d.padL) / (d.w - d.padL - d.padR);
    var t = d.x0 + frac * (d.x1 - d.x0);
    var i = nearest(t);
    var sx = d.padL + (d.w - d.padL - d.padR) *
      (d.t[i] - d.x0) / ((d.x1 - d.x0) || 1);
    var sy = d.padT + (d.h - d.padT - d.padB) *
      (1 - (d.v[i] - d.y0) / ((d.y1 - d.y0) || 1));
    cursor.setAttribute('x1', sx); cursor.setAttribute('x2', sx);
    cursor.setAttribute('visibility', 'visible');
    dot.setAttribute('cx', sx); dot.setAttribute('cy', sy);
    dot.setAttribute('visibility', 'visible');
    tip.hidden = false;
    tip.textContent = 't=' + fmt(d.t[i]) + 's  ' + fmt(d.v[i]);
    var figBox = fig.getBoundingClientRect();
    tip.style.left = Math.min(ev.clientX - figBox.left + 12,
      figBox.width - 130) + 'px';
    tip.style.top = (ev.clientY - figBox.top - 28) + 'px';
  });
  target.addEventListener('mouseleave', function () {
    tip.hidden = true;
    cursor.setAttribute('visibility', 'hidden');
    dot.setAttribute('visibility', 'hidden');
  });
});
"""


def _page(title: str, subtitle: str, body: str, footer: str) -> str:
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_STYLE}</style>
</head>
<body class="viz-root">
<h1>{_esc(title)}</h1>
<p class="sub">{_esc(subtitle)}</p>
{body}
<p class="footer">{_esc(footer)}</p>
<script>{_SCRIPT}</script>
</body>
</html>
"""


def _tile(label: str, value: str, note: str = "", css: str = "") -> str:
    note_html = f'<div class="note">{_esc(note)}</div>' if note else ""
    return (f'<div class="tile {css}"><div class="label">{_esc(label)}</div>'
            f'<div class="value">{_esc(value)}</div>{note_html}</div>')


def _median(values: List[float]) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])
