"""Atomic artifact writes: no reader ever sees a truncated file.

The campaign harness spends hours inside runs whose workers (and whose
parent) can be SIGKILLed mid-write — that is the paper's whole
methodology, stress-to-crash.  Every durable artifact this library
produces (trace CSVs, run manifests, event streams, bench trajectories,
dashboards, campaign results) therefore goes through one shared
write-temp-then-rename helper:

* the payload is written to a temporary file **in the destination
  directory** (same filesystem, so the final rename cannot degrade to a
  copy),
* the handle is flushed and fsynced,
* :func:`os.replace` moves it over the destination in a single atomic
  step.

A crash before the rename leaves the previous version of the file (or
no file) plus at most one ``.tmp`` orphan — never a half-written
artifact.  A crash *with* an exception unlinks the temporary file on
the way out, so failed writes leave nothing behind at all.

:func:`atomic_write` is the primitive; :func:`atomic_write_text` and
:func:`atomic_write_json` cover the two common payload shapes.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from typing import IO, Any, Iterator

__all__ = [
    "atomic_write",
    "atomic_write_text",
    "atomic_write_json",
    "fsync_handle",
]


def fsync_handle(handle: IO) -> None:
    """Flush ``handle`` and fsync it to disk (best effort on odd FDs).

    Used by append-only writers (checkpoint journals) that need each
    record durable the moment it is written, not only at close.
    """
    handle.flush()
    try:
        os.fsync(handle.fileno())
    except (OSError, ValueError):  # pragma: no cover - non-file handles
        pass


@contextlib.contextmanager
def atomic_write(
    path: str | os.PathLike,
    *,
    mode: str = "w",
    newline: str | None = None,
    fsync: bool = True,
) -> Iterator[IO]:
    """Context manager yielding a handle whose contents replace ``path``
    atomically on success.

    The temporary file lives next to the destination (``.<name>.<rand>.tmp``
    in the same directory) so :func:`os.replace` is a same-filesystem
    rename.  On any exception from the body the temporary file is
    removed and ``path`` is left untouched; on success the rename is the
    single visible step, so concurrent readers (and a SIGKILL at any
    instant) see either the old complete file or the new complete file.
    """
    path = os.fspath(path)
    parent = os.path.dirname(path) or "."
    os.makedirs(parent, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=parent, prefix=f".{os.path.basename(path)}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode, newline=newline) as handle:
            yield handle
            if fsync:
                fsync_handle(handle)
        os.replace(tmp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise


def atomic_write_text(path: str | os.PathLike, text: str) -> str:
    """Atomically replace ``path`` with ``text``; returns the path."""
    with atomic_write(path) as handle:
        handle.write(text)
    return os.fspath(path)


def atomic_write_json(
    path: str | os.PathLike,
    payload: Any,
    *,
    indent: int | None = 2,
    sort_keys: bool = False,
    default=None,
) -> str:
    """Atomically replace ``path`` with ``payload`` as JSON; returns the path.

    The file always ends with a newline, matching the artifact style
    used across the repo (diff-friendly, ``cat``-friendly).
    """
    with atomic_write(path) as handle:
        json.dump(payload, handle, indent=indent, sort_keys=sort_keys,
                  default=default)
        handle.write("\n")
    return os.fspath(path)
