"""Lightweight in-process metrics: counters, gauges, histograms, timers.

A :class:`MetricsRegistry` is a name-keyed bag of instruments.  Call
sites fetch an instrument once (``registry.counter("sim.events")``) and
then update it in their hot path; updates are plain attribute writes, so
the cost of an *enabled* instrument is tens of nanoseconds and the cost
of a *disabled* one (the shared null instruments a disabled registry
hands out) is a no-op method call.  Nothing is sampled, buffered or
threaded — a snapshot is an explicit, synchronous read.

Instrument semantics follow the usual conventions:

* **Counter** — monotone accumulator (``inc``).
* **Gauge** — last-write-wins level (``set``), with ``max`` tracking.
* **Histogram** — streaming summary of observations (count / total /
  min / max / mean) plus approximate quantiles (p50/p90/p99) from a
  bounded, deterministically decimated reservoir — memory is O(cap)
  per instrument, never O(stream).
* **Timer** — a histogram of wall-clock durations usable as a context
  manager.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..exceptions import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_TIMER",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValidationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def snapshot(self) -> dict:
        """One JSON-able dict describing the current state."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins level, tracking the maximum it ever reached."""

    __slots__ = ("name", "value", "max_value", "_written")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = float("-inf")
        self._written = False

    def set(self, value: float) -> None:
        """Record the instantaneous level."""
        value = float(value)
        self.value = value
        if value > self.max_value:
            self.max_value = value
        self._written = True

    def snapshot(self) -> dict:
        """One JSON-able dict describing the current state."""
        return {
            "type": "gauge",
            "value": self.value,
            "max": self.max_value if self._written else None,
        }


class Histogram:
    """Streaming summary (count/total/min/max/mean/quantiles) of observations.

    Quantiles come from a bounded reservoir: every ``stride``-th
    observation is kept, and when the reservoir hits its cap it is
    thinned in place (every second kept sample dropped) and the stride
    doubled.  The scheme is deterministic (replays reproduce the same
    estimates), spends O(:data:`RESERVOIR_CAP`) memory however long the
    stream, and is *exact* until the cap is first reached.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_reservoir", "_stride", "_skipped")

    RESERVOIR_CAP = 4096
    QUANTILES = (0.5, 0.9, 0.99)

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: list = []
        self._stride = 1
        self._skipped = 0

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._skipped += 1
        if self._skipped >= self._stride:
            self._skipped = 0
            reservoir = self._reservoir
            reservoir.append(value)
            if len(reservoir) >= self.RESERVOIR_CAP:
                del reservoir[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        """Mean observation (NaN before the first one)."""
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (NaN before the first observation).

        Linear interpolation over the sorted reservoir; exact while the
        stream is shorter than :data:`RESERVOIR_CAP`.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return float("nan")
        ordered = sorted(self._reservoir)
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    def snapshot(self) -> dict:
        """One JSON-able dict describing the current state."""
        empty = self.count == 0
        out = {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "mean": None if empty else self.mean,
        }
        for q in self.QUANTILES:
            label = f"p{q * 100:g}".replace(".", "_")
            out[label] = None if empty else self.quantile(q)
        return out

    def merge_summary(self, summary: dict) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Count, total, min and max merge exactly.  The full observation
        stream is gone once summarised, so the donor's quantile points
        are folded into the reservoir as representative samples — the
        merged quantiles are approximate (the summary bounds stay exact).
        Used to carry per-worker telemetry across a process boundary.
        """
        donor_count = int(summary.get("count") or 0)
        if donor_count == 0:
            return
        self.count += donor_count
        self.total += float(summary.get("total") or 0.0)
        donor_min = summary.get("min")
        donor_max = summary.get("max")
        if donor_min is not None and donor_min < self.min:
            self.min = float(donor_min)
        if donor_max is not None and donor_max > self.max:
            self.max = float(donor_max)
        for q in self.QUANTILES:
            label = f"p{q * 100:g}".replace(".", "_")
            point = summary.get(label)
            if point is not None:
                self._reservoir.append(float(point))
        if len(self._reservoir) >= self.RESERVOIR_CAP:
            del self._reservoir[::2]
            self._stride *= 2


class Timer(Histogram):
    """Histogram of wall-clock durations, usable as a context manager::

        with registry.timer("analysis.holder"):
            ...                     # observed in seconds on exit
    """

    __slots__ = ("_t0",)

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.observe(time.perf_counter() - self._t0)
        return False

    def snapshot(self) -> dict:
        out = super().snapshot()
        out["type"] = "timer"
        return out


class _NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()
    name = "<null>"
    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return float("nan")

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def snapshot(self) -> dict:
        return {"type": "null"}


NULL_COUNTER = _NullInstrument()
NULL_GAUGE = _NullInstrument()
NULL_HISTOGRAM = _NullInstrument()
NULL_TIMER = _NullInstrument()


class MetricsRegistry:
    """Name-keyed instrument registry.

    ``enabled=False`` turns the registry into a sink: every accessor
    returns a shared null instrument and :meth:`snapshot` is empty, so
    instrumented code pays only a dictionary-free no-op per update.
    Instrument names are namespaced with dots by convention
    (``"sim.events_fired"``); requesting an existing name with a
    different instrument type is an error — silent type morphing would
    corrupt dashboards.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls, null):
        if not self.enabled:
            return null
        if not name:
            raise ValidationError("metric name must be non-empty")
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif type(inst) is not cls:
            raise ValidationError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter, NULL_COUNTER)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge, NULL_GAUGE)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get(name, Histogram, NULL_HISTOGRAM)

    def timer(self, name: str) -> Timer:
        """Get or create the timer ``name``."""
        return self._get(name, Timer, NULL_TIMER)

    def get(self, name: str) -> Optional[object]:
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> Dict[str, dict]:
        """JSON-able state of every instrument, sorted by name.

        Safe against a concurrent reader (a /metrics scrape) racing the
        producer's registrations: the name list is materialised first
        and instruments looked up defensively, so a registry growing
        mid-snapshot yields a slightly stale view instead of a
        ``RuntimeError``.
        """
        out: Dict[str, dict] = {}
        for name in sorted(list(self._instruments)):
            inst = self._instruments.get(name)
            if inst is not None:
                out[name] = inst.snapshot()
        return out

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        This is how worker-process telemetry survives the pool
        boundary: counters add, gauges keep the later write but the
        larger max, histograms/timers merge their summaries
        (:meth:`Histogram.merge_summary`).  A disabled registry ignores
        the merge, matching every other write path.
        """
        if not self.enabled:
            return
        for name, state in snapshot.items():
            kind = state.get("type")
            if kind == "counter":
                self.counter(name).inc(float(state.get("value") or 0.0))
            elif kind == "gauge":
                gauge = self.gauge(name)
                gauge.set(float(state.get("value") or 0.0))
                donor_max = state.get("max")
                if donor_max is not None and donor_max > gauge.max_value:
                    gauge.max_value = float(donor_max)
            elif kind == "histogram":
                self.histogram(name).merge_summary(state)
            elif kind == "timer":
                self.timer(name).merge_summary(state)
            else:
                raise ValidationError(
                    f"cannot merge metric {name!r} of unknown type {kind!r}"
                )

    def reset(self) -> None:
        """Drop every instrument (new run, fresh numbers)."""
        self._instruments.clear()
