"""Cross-worker cost attribution from merged span trees.

A campaign's telemetry session holds one merged span tree: the parent's
``campaign-pool`` span plus every worker's spans ingested under
``campaign-pool/campaign-worker/...`` paths (see
:meth:`~repro.obs.spans.SpanCollector.ingest`).  This module folds that
tree into a versioned ``repro.costs/1`` *cost profile* answering "where
did the wall time go":

* each span path's **self time** (summed duration minus summed child
  duration, clamped at zero — parents overlap their children, and a
  pool span overlaps its concurrent workers),
* classified into the pipeline's five **phases** — ``simulate``
  (machine setup/run), ``cwt-holder`` (the wavelet transform + Hölder
  trajectory), ``analysis`` (preprocess/indicator/detector),
  ``trace-io`` (trace collection and CSV writes) and ``pool-overhead``
  (pool scheduling, worker glue) — with unmatched names inheriting the
  nearest classified ancestor, else ``other``,
* per worker (``attrs.worker_ordinal``; local spans pool under
  ``"parent"``) and pooled, with shares over total attributed self time
  (so shares sum to exactly 1.0 whenever any time was attributed),
* plus a "top cost centers" table (the heaviest paths by self time)
  and, when a profiler ran, the CPU-seconds view of the same phases
  from hot-path stats.

Everything is pure folding over span dicts — no I/O, no globals — so
it works on a live session, a saved manifest or a worker's telemetry
capture alike.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..exceptions import ValidationError

__all__ = [
    "COSTS_SCHEMA",
    "PHASES",
    "classify_span",
    "classify_hotpath",
    "build_cost_profile",
    "cost_table",
]

COSTS_SCHEMA = "repro.costs/1"

PHASES = ("simulate", "cwt-holder", "analysis", "trace-io",
          "pool-overhead", "other")

# Span names -> phase.  Unlisted names inherit their nearest classified
# ancestor on the path (a span under analyze-counter is analysis work).
_PHASE_BY_SPAN = {
    "machine-setup": "simulate",
    "machine-run": "simulate",
    "holder": "cwt-holder",
    "analyze-counter": "analysis",
    "preprocess": "analysis",
    "indicator": "analysis",
    "detector": "analysis",
    "machine-collect": "trace-io",
    "write-csv": "trace-io",
    "read-csv": "trace-io",
    "campaign-pool": "pool-overhead",
    "campaign-worker": "pool-overhead",
    "cell-run": "pool-overhead",
}

# Profiler hot-path names -> phase, for the CPU view.
_PHASE_BY_HOTPATH_PREFIX = (
    ("fractal.", "cwt-holder"),
    ("perf.sliding_holder", "cwt-holder"),
    ("core.holder_trajectory", "cwt-holder"),
    ("core.analyze_counter", "analysis"),
    ("memsim.", "simulate"),
    ("simkernel.", "simulate"),
    ("perf.", "pool-overhead"),
)


def classify_span(path: str) -> str:
    """Phase of a span *path*: its deepest classified segment, else
    ``other``."""
    for segment in reversed(path.split("/")):
        phase = _PHASE_BY_SPAN.get(segment)
        if phase is not None:
            return phase
    return "other"


def classify_hotpath(name: str) -> str:
    """Phase of a profiler hot-path name, else ``other``."""
    for prefix, phase in _PHASE_BY_HOTPATH_PREFIX:
        if name.startswith(prefix):
            return phase
    return "other"


def _worker_key(attrs: Mapping) -> str:
    ordinal = attrs.get("worker_ordinal")
    return "parent" if ordinal is None else f"w{ordinal}"


def _parent_path(path: str, known: Mapping) -> Optional[str]:
    """Longest strict path prefix present in ``known``.

    Worker spans are ingested under phantom ``campaign-worker`` levels
    that have no record of their own, so the lookup walks up segment by
    segment instead of chopping one level.
    """
    segments = path.split("/")
    for cut in range(len(segments) - 1, 0, -1):
        candidate = "/".join(segments[:cut])
        if candidate in known:
            return candidate
    return None


def build_cost_profile(
    spans: Sequence[Mapping], *,
    profile: Optional[Mapping] = None,
    top: int = 12,
) -> dict:
    """Fold span dicts into a ``repro.costs/1`` cost profile.

    ``spans`` is the JSON span list of a session or manifest
    (:meth:`SpanCollector.to_list` shape); open spans (no duration) are
    skipped.  ``profile`` optionally injects a profiler snapshot
    (``{"hotpaths": {...}}``) for the CPU view.  Raises
    :class:`ValidationError` when no span carries a duration — a cost
    profile of nothing would be all-NaN noise.
    """
    # Aggregate per (path, worker): duration + call count.
    agg: Dict[str, dict] = {}
    for span in spans:
        duration = span.get("duration")
        if duration is None:
            continue
        path = str(span.get("path") or span.get("name") or "?")
        entry = agg.setdefault(path, {
            "duration": 0.0, "count": 0, "workers": {}})
        entry["duration"] += float(duration)
        entry["count"] += 1
        worker = _worker_key(span.get("attrs") or {})
        per = entry["workers"].setdefault(
            worker, {"duration": 0.0, "count": 0})
        per["duration"] += float(duration)
        per["count"] += 1
    if not agg:
        raise ValidationError(
            "no completed spans to attribute — run with telemetry enabled")

    # Children roll up to the nearest *recorded* ancestor path.
    child_sum: Dict[str, float] = {}
    child_sum_by_worker: Dict[str, Dict[str, float]] = {}
    for path, entry in agg.items():
        parent = _parent_path(path, agg)
        if parent is None:
            continue
        child_sum[parent] = child_sum.get(parent, 0.0) + entry["duration"]
        per_parent = child_sum_by_worker.setdefault(parent, {})
        for worker, per in entry["workers"].items():
            per_parent[worker] = per_parent.get(worker, 0.0) + per["duration"]

    # Self time per path (clamped: a pool span's concurrent workers can
    # sum past its wall duration) and the attribution tables.
    centers: List[dict] = []
    phase_self: Dict[str, float] = {phase: 0.0 for phase in PHASES}
    worker_phase: Dict[str, Dict[str, float]] = {}
    total_self = 0.0
    for path, entry in agg.items():
        self_seconds = max(0.0, entry["duration"] - child_sum.get(path, 0.0))
        phase = classify_span(path)
        phase_self[phase] += self_seconds
        total_self += self_seconds
        centers.append({
            "path": path,
            "phase": phase,
            "calls": entry["count"],
            "total_seconds": entry["duration"],
            "self_seconds": self_seconds,
        })
        per_parent = child_sum_by_worker.get(path, {})
        for worker, per in entry["workers"].items():
            worker_self = max(0.0, per["duration"]
                              - per_parent.get(worker, 0.0))
            phases = worker_phase.setdefault(
                worker, {p: 0.0 for p in PHASES})
            phases[phase] += worker_self

    def shares(by_phase: Dict[str, float]) -> dict:
        total = sum(by_phase.values())
        return {
            phase: {
                "self_seconds": seconds,
                "share": (seconds / total) if total > 0 else None,
            }
            for phase, seconds in by_phase.items()
        }

    centers.sort(key=lambda c: (-c["self_seconds"], c["path"]))
    for center in centers:
        center["share"] = ((center["self_seconds"] / total_self)
                           if total_self > 0 else None)

    roots = [path for path in agg if _parent_path(path, agg) is None]
    wall = max((agg[path]["duration"] for path in roots), default=0.0)

    result = {
        "schema": COSTS_SCHEMA,
        "wall_seconds": wall,
        "attributed_seconds": total_self,
        "n_spans": sum(entry["count"] for entry in agg.values()),
        "phases": shares(phase_self),
        "workers": {
            worker: shares(phases)
            for worker, phases in sorted(worker_phase.items())
        },
        "top_cost_centers": centers[:top],
    }
    hotpaths = (profile or {}).get("hotpaths") or {}
    if hotpaths:
        cpu_phase: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        for name, stats in hotpaths.items():
            cpu = stats.get("cpu_total")
            if cpu is not None:
                cpu_phase[classify_hotpath(name)] += float(cpu)
        cpu_total = sum(cpu_phase.values())
        result["cpu"] = {
            "cpu_seconds": cpu_total,
            "phases": {
                phase: {
                    "cpu_seconds": seconds,
                    "share": (seconds / cpu_total) if cpu_total > 0 else None,
                }
                for phase, seconds in cpu_phase.items()
            },
        }
    return result


def cost_table(costs: Mapping) -> List[List[str]]:
    """Render a cost profile's top centers as aligned table rows
    (``path, phase, calls, self s, share``) for CLI output."""
    rows: List[List[str]] = []
    for center in costs.get("top_cost_centers", []):
        share = center.get("share")
        rows.append([
            str(center.get("path")),
            str(center.get("phase")),
            str(center.get("calls")),
            f"{float(center.get('self_seconds', 0.0)):.4f}",
            "—" if share is None else f"{100.0 * share:.1f}%",
        ])
    return rows
