"""Structured logging on top of the stdlib ``logging`` machinery.

Every library logger lives under the ``"repro"`` root, which ships with
a :class:`logging.NullHandler` and ``propagate=False`` — an
unconfigured library is silent and costs one ``isEnabledFor`` check per
suppressed call.  :func:`configure_logging` attaches the real sinks:

* a human-readable stream handler (``HH:MM:SS LEVEL name: msg k=v``),
* optionally a JSON-lines file handler, one object per record, with the
  structured fields promoted to top-level keys.

Call sites use :func:`get_logger`, which returns a thin
:class:`StructuredLogger` wrapper whose level methods take arbitrary
keyword fields::

    log = get_logger("memsim.machine")
    log.info("crash", sim_time=51_230.0, reason="commit")
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Optional

from ..exceptions import ValidationError

__all__ = [
    "LOG_LEVELS",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "reset_logging",
]

_ROOT = "repro"

LOG_LEVELS = ("debug", "info", "warning", "error", "off")

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "off": logging.CRITICAL + 10,
}


def _root_logger() -> logging.Logger:
    root = logging.getLogger(_ROOT)
    if not root.handlers:
        root.addHandler(logging.NullHandler())
        root.propagate = False
        root.setLevel(_LEVELS["warning"])
    return root


class _HumanFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL name: message key=value ...``"""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        base = (f"{stamp} {record.levelname.lower():<7} "
                f"{record.name}: {record.getMessage()}")
        fields = getattr(record, "fields", None)
        if fields:
            pairs = " ".join(f"{k}={_terse(v)}" for k, v in fields.items())
            base = f"{base} | {pairs}"
        return base


def _terse(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class _JsonFormatter(logging.Formatter):
    """One JSON object per record; structured fields become top-level keys."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": record.created,
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            for key, value in fields.items():
                payload.setdefault(key, value)
        return json.dumps(payload, default=str)


class StructuredLogger:
    """Level methods with keyword fields; wraps one stdlib logger."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def name(self) -> str:
        """Dotted logger name (``repro.<suffix>``)."""
        return self._logger.name

    def _log(self, level: int, msg: str, fields: dict) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, msg, extra={"fields": fields})

    def debug(self, msg: str, **fields) -> None:
        """Log at DEBUG with structured ``fields``."""
        self._log(logging.DEBUG, msg, fields)

    def info(self, msg: str, **fields) -> None:
        """Log at INFO with structured ``fields``."""
        self._log(logging.INFO, msg, fields)

    def warning(self, msg: str, **fields) -> None:
        """Log at WARNING with structured ``fields``."""
        self._log(logging.WARNING, msg, fields)

    def error(self, msg: str, **fields) -> None:
        """Log at ERROR with structured ``fields``."""
        self._log(logging.ERROR, msg, fields)

    def is_enabled_for(self, level_name: str) -> bool:
        """Whether records at ``level_name`` would be emitted."""
        if level_name not in _LEVELS:
            raise ValidationError(
                f"level must be one of {LOG_LEVELS!r}, got {level_name!r}"
            )
        return self._logger.isEnabledFor(_LEVELS[level_name])


def get_logger(name: str = "") -> StructuredLogger:
    """A structured logger under the library root.

    ``get_logger("memsim.machine")`` → stdlib logger
    ``repro.memsim.machine``; the empty string returns the root.
    """
    _root_logger()
    full = f"{_ROOT}.{name}" if name else _ROOT
    return StructuredLogger(logging.getLogger(full))


def configure_logging(
    level: str = "info",
    *,
    stream: Optional[IO[str]] = None,
    json_path: Optional[str] = None,
) -> None:
    """Attach real sinks to the library root and set its level.

    Parameters
    ----------
    level:
        One of :data:`LOG_LEVELS`.  ``"off"`` silences everything while
        keeping handlers in place (so a later reconfigure can re-open).
    stream:
        Destination of the human-readable handler (default
        ``sys.stderr`` so log lines never pollute piped table output).
    json_path:
        When given, also append JSON-lines records to this file.
    """
    if level not in _LEVELS:
        raise ValidationError(
            f"level must be one of {LOG_LEVELS!r}, got {level!r}"
        )
    root = _root_logger()
    reset_logging()
    root.setLevel(_LEVELS[level])
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(_HumanFormatter())
    root.addHandler(handler)
    if json_path is not None:
        file_handler = logging.FileHandler(json_path)
        file_handler.setFormatter(_JsonFormatter())
        root.addHandler(file_handler)


def reset_logging() -> None:
    """Detach every configured sink, returning to the silent default."""
    root = _root_logger()
    for handler in list(root.handlers):
        if not isinstance(handler, logging.NullHandler):
            root.removeHandler(handler)
            handler.close()
    root.setLevel(_LEVELS["warning"])
