"""Hot-path benchmark harness and the ``BENCH_*.json`` perf trajectory.

``python -m repro bench`` runs a curated suite of microbenchmarks over
the library's hot paths — the stress-to-crash fleet, the Hölder
trajectory, the multifractal estimators (WTMM, MF-DFA, the sliding
spectrum), the wavelet transforms, the raw event engine, the full
``analyze_counter`` pipeline, the process-pool campaign fan-out and the
sliding-engine online stream — and freezes the numbers into a versioned
trajectory file::

    BENCH_<YYYYMMDD>_<gitsha7>.json

Each file records, per benchmark: best/mean wall seconds over N
repeats, CPU seconds, throughput in samples/sec, and the peak traced
allocation size of one run; plus an environment fingerprint (python,
numpy, platform, CPU count, git SHA) and a *calibration* measurement —
the wall time of a fixed numpy workload on this machine.  Trajectory
files accumulate; comparing the newest file against the previous one
(or an explicitly committed baseline) yields the regression report, and
``compare_runs`` normalises by the calibration ratio so a slower CI
runner is not mistaken for a slower library.

Every workload is deterministic (fixed seeds, fixed sizes), so two runs
of the same code on the same machine time the same computation.
``--quick`` shrinks the workloads ~4-10x for CI smoke runs; quick and
full results are never compared against each other.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import platform
import subprocess
import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import TraceError, ValidationError
from .atomic import atomic_write_json
from .logger import get_logger

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_PREFIX",
    "BenchCase",
    "SUITE",
    "case_names",
    "select_cases",
    "run_case",
    "run_suite",
    "environment_fingerprint",
    "write_bench_file",
    "read_bench_file",
    "list_bench_files",
    "find_baseline",
    "compare_runs",
    "render_comparison",
]

BENCH_SCHEMA = "repro.bench-trajectory/1"
BENCH_PREFIX = "BENCH_"

_log = get_logger("obs.bench")


# -- the curated suite ---------------------------------------------------------
#
# A case's ``setup(quick)`` builds the workload (inputs, configs) outside
# the timed region and returns a zero-argument callable; the callable
# runs one iteration and returns the number of samples it processed, so
# the harness can report throughput.  All RNG seeds are fixed.

@dataclass(frozen=True)
class BenchCase:
    """One curated microbenchmark over a library hot path."""

    name: str
    group: str
    description: str
    setup: Callable[[bool], Callable[[], int]]


def _case_simkernel_events(quick: bool) -> Callable[[], int]:
    from ..simkernel import Simulator

    n_chains = 20
    horizon = 2_000.0 if quick else 10_000.0

    def run() -> int:
        sim = Simulator()

        def make_tick(period: float):
            def tick() -> None:
                sim.schedule_in(period, tick)
            return tick

        for i in range(n_chains):
            sim.schedule_in(0.5 + 0.01 * i, make_tick(1.0 + 0.01 * i))
        sim.run_until(horizon)
        return sim.events_fired

    return run


def _case_memsim_fleet(quick: bool) -> Callable[[], int]:
    from ..memsim import MachineConfig, run_fleet

    n_runs = 1 if quick else 2
    budget = 4_000.0 if quick else 20_000.0

    def run() -> int:
        # workers=1 keeps this trajectory a pure single-core simulator
        # measurement; the pool is timed by campaign.parallel instead.
        results = run_fleet(
            MachineConfig.nt4(seed=1, max_run_seconds=budget), n_runs,
            workers=1)
        return sum(
            len(r.bundle[name]) for r in results for name in r.bundle.names)

    return run


def _synthetic_counter(n: int, seed: int = 7):
    import numpy as np

    from ..generators import fgn
    from ..trace.series import TimeSeries

    noise = fgn(n, 0.7, rng=np.random.default_rng(seed))
    return TimeSeries.from_values(np.cumsum(noise), name="synthetic")


def _case_holder_trajectory(quick: bool) -> Callable[[], int]:
    from ..core.holder import holder_trajectory

    ts = _synthetic_counter(4096 if quick else 16384)

    def run() -> int:
        return len(holder_trajectory(ts))

    return run


def _case_wtmm(quick: bool) -> Callable[[], int]:
    import numpy as np

    from ..fractal.wtmm import wtmm
    from ..generators import fbm

    x = fbm(2048 if quick else 8192, 0.6, rng=np.random.default_rng(3))

    def run() -> int:
        wtmm(x)
        return x.size

    return run


def _case_mfdfa(quick: bool) -> Callable[[], int]:
    import numpy as np

    from ..fractal.mfdfa import mfdfa
    from ..generators import fgn

    x = fgn(4096 if quick else 16384, 0.7, rng=np.random.default_rng(5))

    def run() -> int:
        mfdfa(x)
        return x.size

    return run


def _case_sliding_spectrum(quick: bool) -> Callable[[], int]:
    from ..fractal.sliding import sliding_mfdfa

    ts = _synthetic_counter(4096 if quick else 12288, seed=11)
    window = 1024
    step = 512 if quick else 256

    def run() -> int:
        sliding_mfdfa(ts, window=window, step=step)
        return len(ts)

    return run


def _case_wavelets(quick: bool) -> Callable[[], int]:
    import numpy as np

    from ..fractal.wavelets import cwt, dwt, modwt
    from ..generators import fgn

    x = fgn(4096 if quick else 16384, 0.6, rng=np.random.default_rng(9))
    scales = np.geomspace(4.0, x.size / 8.0, 16)

    def run() -> int:
        dwt(x)
        modwt(x, level=6)
        cwt(np.cumsum(x), scales)
        return x.size

    return run


def _case_analyze_pipeline(quick: bool) -> Callable[[], int]:
    from ..core.pipeline import analyze_counter

    ts = _synthetic_counter(4096 if quick else 16384, seed=13)

    def run() -> int:
        analyze_counter(ts, indicator_window=256)
        return len(ts)

    return run


def _case_campaign_parallel(quick: bool) -> Callable[[], int]:
    """Process-pool campaign fan-out, gated on equivalence + speedup.

    Setup runs the sequential reference once and the pooled campaign
    once: the payloads must be bit-identical, and on machines with >= 4
    cores the pooled run must be meaningfully faster (loose floor; the
    strict determinism contract lives in the test suite).  The timed
    iteration is the pooled campaign alone, so the trajectory tracks
    pool efficiency.
    """
    from ..analysis.campaign import ExperimentSpec, cells_payload, run_campaign
    from ..exceptions import AnalysisError

    n_cells, n_runs, budget = (2, 2, 800.0) if quick else (4, 8, 1_200.0)
    specs = [
        ExperimentSpec(
            name=f"cell{i}", scenario="stress", n_runs=n_runs,
            base_seed=100 + 10 * i, fault_factor=1.0 + 0.25 * i,
            max_run_seconds=budget,
        )
        for i in range(n_cells)
    ]
    workers = min(4, os.cpu_count() or 1)

    t0 = time.perf_counter()
    sequential = run_campaign(specs, workers=1)
    wall_seq = time.perf_counter() - t0
    t0 = time.perf_counter()
    pooled = run_campaign(specs, workers=workers)
    wall_pool = time.perf_counter() - t0
    if cells_payload(sequential) != cells_payload(pooled):
        raise AnalysisError(
            "parallel campaign diverged from sequential reference")
    speedup = wall_seq / wall_pool if wall_pool > 0 else float("inf")
    _log.info("campaign pool speedup", workers=workers,
              sequential_s=round(wall_seq, 3), pooled_s=round(wall_pool, 3),
              speedup=round(speedup, 2))
    if not quick and workers >= 4 and speedup < 1.5:
        raise AnalysisError(
            f"campaign pool speedup {speedup:.2f}x with {workers} workers "
            "is below the 1.5x floor (target: 2x on 4 cores)"
        )

    def run() -> int:
        run_campaign(specs, workers=workers)
        return n_cells * n_runs

    return run


def _aging_fleet_config(seed: int, budget: float, scale: float = 6.0):
    """NT4 config with scaled faults — crashes well inside ``budget``."""
    from dataclasses import replace

    from ..memsim import MachineConfig

    base = MachineConfig.nt4(seed=seed, max_run_seconds=budget)
    return replace(base, faults=base.faults.scaled(scale))


def _case_fleet_vec(quick: bool) -> Callable[[], int]:
    """Vectorised fleet engine, gated on throughput over the object path.

    Setup times a small object-engine reference fleet and one full
    vector fleet of the same config: the vector engine must simulate at
    least 10x more host-seconds per wall second (the ISSUE target at the
    256-host scale; the quick fleet is smaller but the floor is the
    same).  The timed iteration is the vector fleet alone, so the
    trajectory tracks struct-of-arrays throughput.
    """
    from ..exceptions import AnalysisError
    from ..memsim import VectorFleet, run_fleet

    n_vec, n_obj, budget = (128, 2, 2_000.0) if quick else (256, 4, 4_000.0)
    config = _aging_fleet_config(seed=1, budget=budget)

    t0 = time.perf_counter()
    run_fleet(config, n_obj, workers=1)
    wall_obj = time.perf_counter() - t0
    t0 = time.perf_counter()
    VectorFleet(config, n_vec).run()
    wall_vec = time.perf_counter() - t0
    obj_rate = n_obj / wall_obj if wall_obj > 0 else float("inf")
    vec_rate = n_vec / wall_vec if wall_vec > 0 else float("inf")
    speedup = vec_rate / obj_rate if obj_rate > 0 else float("inf")
    _log.info("fleet vector speedup", object_hosts_per_sec=round(obj_rate, 2),
              vector_hosts_per_sec=round(vec_rate, 2),
              speedup=round(speedup, 1))
    if speedup < 10.0:
        raise AnalysisError(
            f"vector fleet throughput {speedup:.1f}x the object path "
            f"({vec_rate:.1f} vs {obj_rate:.1f} hosts/sec at {n_vec} hosts) "
            "is below the 10x floor"
        )

    def run() -> int:
        VectorFleet(config, n_vec).run()
        return n_vec

    return run


def _case_fleet_vec_equiv(quick: bool) -> Callable[[], int]:
    """Vector-engine equivalence layer, gated on oracle agreement.

    Setup asserts both halves of the equivalence contract against the
    object-model oracle: exact batch decomposition (host i of a batch is
    bit-identical to host i alone) and the cross-engine crash-time KS /
    crash-reason check.  The timed iteration is the full equivalence
    report (object + vector fleets + KS), so the trajectory tracks the
    cost of the verification layer itself.
    """
    from ..memsim import (
        check_batch_decomposition,
        check_cross_engine,
        fleet_equivalence_report,
        run_fleet,
    )

    n_hosts, budget = (6, 4_000.0) if quick else (12, 6_000.0)
    config = _aging_fleet_config(seed=31, budget=budget)
    check_batch_decomposition(
        _aging_fleet_config(seed=7, budget=1_500.0), 3)
    # The object half dominates the report's cost; reuse one reference
    # fleet for the gate and the timed iterations.
    reference = run_fleet(config, n_hosts, workers=1)
    report = fleet_equivalence_report(config, n_hosts,
                                      object_results=reference)
    check_cross_engine(report)

    def run() -> int:
        rep = fleet_equivalence_report(config, n_hosts,
                                       object_results=reference)
        check_cross_engine(rep)
        return n_hosts

    return run


def _case_online_stream(quick: bool) -> Callable[[], int]:
    """Online monitor streaming on the sliding Hölder engine.

    Setup replays the same stream through the batch and sliding engines
    under a private telemetry session: indicator points and alarm time
    must agree, and the sliding engine must spend >= 5x fewer CWT FLOPs
    (the ``fractal.cwt_flops`` counter).  The timed iteration is the
    sliding-engine feed — the live ``watch`` hot path.
    """
    import numpy as np

    from ..core.online import OnlineAgingMonitor
    from ..exceptions import AnalysisError
    from ..generators import fgn
    from .session import telemetry_session

    n = 12_288 if quick else 24_576
    noise = fgn(n, 0.75, rng=np.random.default_rng(21))
    values = np.cumsum(noise)
    times = np.arange(n, dtype=float)

    def feed(engine: str):
        monitor = OnlineAgingMonitor(holder_engine=engine)
        with telemetry_session() as session:
            monitor.update_many(times, values)
            flops = session.metrics.counter("fractal.cwt_flops").value
        return monitor, flops

    batch, flops_batch = feed("batch")
    sliding, flops_sliding = feed("sliding")
    if not np.allclose(batch.indicator_history, sliding.indicator_history,
                       rtol=1e-9, atol=1e-8):
        raise AnalysisError(
            "sliding engine indicator points diverged from batch engine")
    if batch.alarm_time != sliding.alarm_time:
        raise AnalysisError(
            f"sliding engine alarm time {sliding.alarm_time} differs from "
            f"batch {batch.alarm_time}"
        )
    ratio = flops_batch / flops_sliding if flops_sliding else float("inf")
    _log.info("online stream flops", batch=flops_batch,
              sliding=flops_sliding, ratio=round(ratio, 2))
    if ratio < 5.0:
        raise AnalysisError(
            f"sliding engine CWT FLOP reduction {ratio:.2f}x is below "
            "the required 5x"
        )

    def run() -> int:
        monitor = OnlineAgingMonitor(holder_engine="sliding")
        monitor.update_many(times, values)
        return n

    return run


def _case_trace_store(quick: bool) -> Callable[[], int]:
    """Columnar trace store read throughput, gated >= 5x over CSV.

    Setup synthesises a realistic multi-counter run bundle, writes it
    through both codecs into a scratch directory, and times a few
    read-backs of each: the memory-mapped columnar read must be at
    least 5x faster than the CSV parse of the same data.  The timed
    iteration is the columnar ``read_bundle`` — the per-run cost a
    campaign analysing archived traces pays.
    """
    import atexit
    import shutil
    import tempfile

    import numpy as np

    from ..exceptions import AnalysisError
    from ..trace import TimeSeries, TraceBundle, read_bundle, write_bundle

    n = 50_000 if quick else 200_000
    n_counters = 4
    rng = np.random.default_rng(23)
    times = np.arange(n, dtype=float)
    bundle = TraceBundle(metadata={"crash_time": float(n) * 0.9,
                                   "crash_reason": "commit_exhaustion",
                                   "os_profile": "nt4"})
    for i in range(n_counters):
        values = np.cumsum(rng.normal(size=n)) * 1e6 + 5e8
        bundle.add(TimeSeries(times=times, values=values,
                              name=f"Counter{i}", units="bytes"))

    scratch = tempfile.mkdtemp(prefix="repro-bench-trace-store-")
    atexit.register(shutil.rmtree, scratch, ignore_errors=True)
    csv_path = os.path.join(scratch, "run.csv")
    col_path = os.path.join(scratch, "run.store")
    write_bundle(bundle, csv_path)
    write_bundle(bundle, col_path)

    def best_of(reader, path, reps: int = 3) -> float:
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            reader(path)
            best = min(best, time.perf_counter() - t0)
        return best

    wall_csv = best_of(read_bundle, csv_path)
    wall_col = best_of(read_bundle, col_path)
    speedup = wall_csv / wall_col if wall_col > 0 else float("inf")
    _log.info("trace store read speedup", csv_s=round(wall_csv, 4),
              columnar_s=round(wall_col, 4), speedup=round(speedup, 1))
    if speedup < 5.0:
        shutil.rmtree(scratch, ignore_errors=True)
        raise AnalysisError(
            f"columnar read {speedup:.1f}x the CSV read "
            f"({wall_col * 1e3:.1f} ms vs {wall_csv * 1e3:.1f} ms for "
            f"{n_counters}x{n} samples) is below the 5x floor")

    def run() -> int:
        read_bundle(col_path)
        return n * n_counters

    return run


SUITE: Tuple[BenchCase, ...] = (
    BenchCase("simkernel.events", "simkernel",
              "event-engine churn: 20 self-rescheduling timer chains",
              _case_simkernel_events),
    BenchCase("memsim.fleet", "memsim",
              "stress-to-crash fleet simulation (NT4 profile)",
              _case_memsim_fleet),
    BenchCase("memsim.fleet_vec", "memsim",
              "vectorised fleet engine throughput "
              "(>=10x object-path hosts/sec gated)",
              _case_fleet_vec),
    BenchCase("memsim.fleet_vec_equiv", "memsim",
              "vector-engine equivalence layer "
              "(batch decomposition + cross-engine KS gated)",
              _case_fleet_vec_equiv),
    BenchCase("core.holder", "core",
              "pointwise Hölder trajectory of a synthetic counter",
              _case_holder_trajectory),
    BenchCase("fractal.wtmm", "fractal",
              "WTMM multifractal spectrum of an fBm path",
              _case_wtmm),
    BenchCase("fractal.mfdfa", "fractal",
              "MF-DFA generalized-Hurst analysis of fGn",
              _case_mfdfa),
    BenchCase("fractal.sliding", "fractal",
              "sliding-window MFDFA spectrum trajectory",
              _case_sliding_spectrum),
    BenchCase("fractal.wavelets", "fractal",
              "DWT + MODWT + CWT transforms",
              _case_wavelets),
    BenchCase("core.pipeline", "core",
              "full analyze_counter chain (preprocess→Hölder→detector)",
              _case_analyze_pipeline),
    BenchCase("campaign.parallel", "perf",
              "process-pool campaign fan-out (equivalence + speedup gated)",
              _case_campaign_parallel),
    BenchCase("online.stream", "perf",
              "online monitor stream on the sliding Hölder engine "
              "(>=5x CWT FLOP reduction gated)",
              _case_online_stream),
    BenchCase("trace.store", "trace",
              "memory-mapped columnar trace read "
              "(>=5x CSV read throughput gated)",
              _case_trace_store),
)


def case_names() -> List[str]:
    """The names of every benchmark in the curated suite."""
    return [case.name for case in SUITE]


def select_cases(patterns: Optional[Sequence[str]]) -> List[BenchCase]:
    """Cases whose name contains any of ``patterns`` (all when None/empty)."""
    if not patterns:
        return list(SUITE)
    chosen = [c for c in SUITE if any(p in c.name for p in patterns)]
    if not chosen:
        raise ValidationError(
            f"no benchmark matches {list(patterns)!r}; "
            f"available: {case_names()}"
        )
    return chosen


# -- measurement ---------------------------------------------------------------

def run_case(
    case: BenchCase, *, quick: bool = False, repeats: int = 3,
    track_memory: bool = True,
) -> dict:
    """Run one benchmark case and return its JSON-able result record.

    One untimed warmup iteration absorbs lazy imports, filter caches and
    allocator warm-up; then ``repeats`` timed iterations (wall via
    ``perf_counter``, CPU via ``process_time``); finally, when
    ``track_memory`` is on, one extra iteration under ``tracemalloc``
    measures the peak traced allocation size (kept out of the timings —
    tracing slows allocation-heavy code severalfold).
    """
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    fn = case.setup(quick)
    n_samples = fn()  # warmup, untimed
    walls: List[float] = []
    cpus: List[float] = []
    for _ in range(repeats):
        c0 = time.process_time()
        w0 = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - w0)
        cpus.append(time.process_time() - c0)
    mem_peak: Optional[int] = None
    if track_memory:
        was_tracing = tracemalloc.is_tracing()
        if not was_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
        fn()
        mem_peak = tracemalloc.get_traced_memory()[1]
        if not was_tracing:
            tracemalloc.stop()
    wall_best = min(walls)
    return {
        "group": case.group,
        "description": case.description,
        "repeats": repeats,
        "n_samples": n_samples,
        "wall_best": wall_best,
        "wall_mean": sum(walls) / len(walls),
        "cpu_best": min(cpus),
        "samples_per_sec": n_samples / wall_best if wall_best > 0 else None,
        "mem_peak_bytes": mem_peak,
    }


def _calibration_seconds() -> float:
    """Wall time of a fixed numpy workload — this machine's speed unit.

    Comparing two trajectory files from different machines, the ratio of
    their calibrations estimates the hardware speed difference, letting
    the regression check normalise it away.
    """
    import numpy as np

    rng = np.random.default_rng(12345)
    x = rng.standard_normal(2**18)
    m = rng.standard_normal((96, 96))
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        y = np.fft.rfft(x)
        float(np.abs(y).sum())
        np.convolve(x[:2**14], x[:2**9]).sum()
        np.linalg.eigvalsh(m @ m.T)
        np.sort(x.copy())
        best = min(best, time.perf_counter() - t0)
    return best


def git_sha(short: int = 12) -> str:
    """The current git commit (CI env var or ``git rev-parse``), else "unknown"."""
    env_sha = os.environ.get("GITHUB_SHA")
    if env_sha:
        return env_sha[:short]
    try:
        out = subprocess.run(
            ["git", "rev-parse", f"--short={short}", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except OSError:
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def environment_fingerprint() -> dict:
    """Where these numbers came from: versions, hardware, calibration."""
    import numpy

    from .. import __version__

    return {
        "repro": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": git_sha(),
        "calibration_seconds": _calibration_seconds(),
    }


def run_suite(
    *, quick: bool = False, repeats: Optional[int] = None,
    select: Optional[Sequence[str]] = None, track_memory: bool = True,
    progress: Optional[Callable[[str, dict], None]] = None,
) -> dict:
    """Run (a selection of) the suite and return the trajectory payload."""
    if repeats is None:
        repeats = 3 if quick else 5
    cases = select_cases(select)
    results: Dict[str, dict] = {}
    for case in cases:
        _log.info("benchmark starting", case=case.name, quick=quick)
        record = run_case(case, quick=quick, repeats=repeats,
                          track_memory=track_memory)
        results[case.name] = record
        _log.info("benchmark finished", case=case.name,
                  wall_best=record["wall_best"])
        if progress is not None:
            progress(case.name, record)
    return {
        "schema": BENCH_SCHEMA,
        "created_at": _dt.datetime.now(_dt.timezone.utc).isoformat(),
        "quick": quick,
        "repeats": repeats,
        "environment": environment_fingerprint(),
        "results": results,
    }


# -- trajectory files ----------------------------------------------------------

def bench_filename(payload: dict) -> str:
    """``BENCH_<YYYYMMDD>_<gitsha7>.json`` for a suite payload."""
    stamp = payload["created_at"][:10].replace("-", "")
    sha = payload["environment"].get("git_sha", "unknown")[:7] or "unknown"
    return f"{BENCH_PREFIX}{stamp}_{sha}.json"


def write_bench_file(payload: dict, out_dir: str | os.PathLike) -> str:
    """Write the trajectory file under ``out_dir`` (atomically); returns
    its path."""
    path = os.path.join(os.fspath(out_dir), bench_filename(payload))
    return atomic_write_json(path, payload, sort_keys=False)


def read_bench_file(path: str | os.PathLike) -> dict:
    """Read one trajectory file back, validating its schema."""
    with open(path, "r") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TraceError(f"corrupt bench file {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA:
        raise TraceError(
            f"unsupported bench schema in {path} (expected {BENCH_SCHEMA!r})"
        )
    return payload


def list_bench_files(path: str | os.PathLike) -> List[dict]:
    """Summarise every readable ``BENCH_*.json`` under ``path``.

    Accepts a directory (scans for trajectory files) or a single file.
    Unreadable or foreign-schema files are skipped, not fatal — the
    directory may mix artifacts from several tool versions.  Returns one
    record per file, oldest first: path, creation date, git sha, quick
    flag and the per-case best wall times.
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        entries = [
            os.path.join(path, name) for name in sorted(os.listdir(path))
            if name.startswith(BENCH_PREFIX) and name.endswith(".json")
        ]
    elif os.path.isfile(path):
        entries = [path]
    else:
        entries = []
    records: List[dict] = []
    for full in entries:
        try:
            payload = read_bench_file(full)
        except (TraceError, OSError):
            continue
        records.append({
            "path": full,
            "created_at": payload.get("created_at", ""),
            "git_sha": (payload.get("environment", {}).get("git_sha")
                        or "unknown")[:7],
            "quick": bool(payload.get("quick")),
            "cases": {
                name: record.get("wall_best")
                for name, record in payload.get("results", {}).items()
            },
        })
    records.sort(key=lambda r: r["created_at"])
    return records


def find_baseline(
    path: str | os.PathLike, *, quick: Optional[bool] = None,
    exclude: Optional[str | os.PathLike] = None,
) -> Optional[str]:
    """The newest matching ``BENCH_*.json`` under ``path`` (or the file itself).

    ``quick`` filters to trajectory files of the same workload size —
    quick and full runs time different computations and must never be
    compared.  ``exclude`` skips the file just written.  Returns None
    when nothing matches (first run ever: no baseline, nothing to
    compare).
    """
    path = os.fspath(path)
    if os.path.isfile(path):
        return path
    if not os.path.isdir(path):
        return None
    excluded = os.path.abspath(os.fspath(exclude)) if exclude else None
    candidates: List[Tuple[str, str]] = []
    for entry in os.listdir(path):
        if not (entry.startswith(BENCH_PREFIX) and entry.endswith(".json")):
            continue
        full = os.path.join(path, entry)
        if excluded and os.path.abspath(full) == excluded:
            continue
        try:
            payload = read_bench_file(full)
        except (TraceError, OSError):
            continue
        if quick is not None and bool(payload.get("quick")) != quick:
            continue
        candidates.append((payload.get("created_at", ""), full))
    if not candidates:
        return None
    candidates.sort()
    return candidates[-1][1]


# -- comparison / regression report --------------------------------------------

def compare_runs(
    baseline: dict, current: dict, *, threshold: float = 0.25,
    normalize: bool = True,
) -> dict:
    """Compare two trajectory payloads hot path by hot path.

    The compared quantity is best wall time; with ``normalize`` on, the
    baseline's timings are rescaled by the machines' calibration ratio
    (current/baseline), so cross-machine comparisons measure the code,
    not the hardware.  A hot path regresses when its (normalised) ratio
    exceeds ``1 + threshold``; it improved when below ``1 - threshold``.
    """
    if threshold <= 0:
        raise ValidationError(f"threshold must be positive, got {threshold}")
    if bool(baseline.get("quick")) != bool(current.get("quick")):
        raise ValidationError(
            "cannot compare quick and full trajectory files: "
            "they time different workloads"
        )
    scale = 1.0
    if normalize:
        cal_base = baseline.get("environment", {}).get("calibration_seconds")
        cal_cur = current.get("environment", {}).get("calibration_seconds")
        if cal_base and cal_cur and cal_base > 0:
            scale = cal_cur / cal_base
    rows: List[dict] = []
    regressions: List[str] = []
    for name, cur in current.get("results", {}).items():
        base = baseline.get("results", {}).get(name)
        if base is None:
            rows.append({"name": name, "status": "new",
                         "baseline_wall": None,
                         "current_wall": cur["wall_best"], "ratio": None})
            continue
        expected = base["wall_best"] * scale
        ratio = cur["wall_best"] / expected if expected > 0 else float("inf")
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            regressions.append(name)
        elif ratio < 1.0 - threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append({"name": name, "status": status,
                     "baseline_wall": expected,
                     "current_wall": cur["wall_best"], "ratio": ratio})
    return {
        "threshold": threshold,
        "normalized": normalize,
        "calibration_scale": scale,
        "rows": rows,
        "regressions": regressions,
    }


def render_comparison(comparison: dict, *, baseline_path: str = "") -> str:
    """Human-readable regression report for one comparison."""
    from ..report import render_table

    rows = []
    for row in comparison["rows"]:
        rows.append([
            row["name"],
            "-" if row["baseline_wall"] is None
            else f"{row['baseline_wall'] * 1e3:.2f}",
            f"{row['current_wall'] * 1e3:.2f}",
            "-" if row["ratio"] is None else f"{row['ratio']:.3f}",
            "-" if row["ratio"] is None
            else f"{(row['ratio'] - 1.0) * 100.0:+.1f}%",
            row["status"],
        ])
    title = "Perf trajectory vs baseline"
    if baseline_path:
        title += f" ({baseline_path})"
    if comparison["normalized"] and comparison["calibration_scale"] != 1.0:
        title += (f" [calibration-normalized x"
                  f"{comparison['calibration_scale']:.3f}]")
    table = render_table(
        ["hot path", "baseline_ms", "current_ms", "ratio", "delta", "status"],
        rows, title=title,
    )
    footer = (
        f"\nregression threshold: {comparison['threshold'] * 100:.0f}% — "
        + (f"{len(comparison['regressions'])} hot path(s) regressed: "
           + ", ".join(comparison["regressions"])
           if comparison["regressions"] else "no regressions")
    )
    return table + footer
