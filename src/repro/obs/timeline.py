"""Campaign timeline recording: the control plane's historical dimension.

``/status`` and ``/metrics`` answer "what is happening *now*"; this
module answers "what happened" — how throughput, worker RSS, ETA and
retries evolved over a campaign — as a versioned append-only JSONL
artifact (schema ``repro.timeline/1``).

* :class:`TimelineRecorder` — a background daemon thread sampling
  periodic *frames* (metrics-registry counter totals + deltas, the
  :class:`~repro.obs.resources.ResourceSampler`'s parent/worker digest,
  the :class:`~repro.obs.statusd.StatusBoard`'s progress/EWMA-ETA and
  journal heartbeat) interleaved with discrete *annotations* for
  retries, timeouts, worker deaths, alert firings and flight-record
  dumps (fed by the :func:`repro.obs.ops.flight_note` listener hook —
  no per-unit hot-path work).  A bounded in-memory ring mirrors the
  stream for the status server's ``/timeline`` endpoint; the artifact
  itself streams into an :func:`~repro.obs.atomic.atomic_write`
  temporary and appears atomically at :meth:`~TimelineRecorder.finalize`.
* :func:`read_timeline` / :func:`validate_timeline` — load and check a
  saved stream (header first, known kinds, monotone times, truncated
  final line tolerated like the campaign journal).
* :func:`slice_timeline`, :func:`timeline_summary`,
  :func:`timeline_to_csv` — the ``repro timeline`` subcommand's
  primitives: time-range slicing, a human digest, and a long-format
  CSV export.

Timestamps: every record carries ``t`` (seconds since recorder start,
forced monotone non-decreasing) and ``wall_time`` (UNIX seconds, for
cross-host merging).  Like the rest of the control plane the recorder
is provably observation-only — it reads counters, gauges and board
snapshots and never touches campaign payloads.
"""

from __future__ import annotations

import collections
import json
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..exceptions import ValidationError
from . import session as _session
from .atomic import atomic_write, fsync_handle
from .logger import get_logger
from .metrics import Counter
from . import ops as _ops

__all__ = [
    "TIMELINE_SCHEMA",
    "TimelineRecorder",
    "read_timeline",
    "validate_timeline",
    "slice_timeline",
    "timeline_summary",
    "timeline_to_csv",
]

TIMELINE_SCHEMA = "repro.timeline/1"

_log = get_logger("obs.timeline")

# Counter families worth a per-frame sample — the same whitelist the
# /status payload uses (library-internal counters like fractal.* cache
# hits churn far too fast to be timeline signal).
_FRAME_COUNTER_PREFIXES = (
    "perf.pool.",
    "campaign.",
    "resources.",
    "obs.flight_dumps",
    "scoreboard.",
)

# Operational note kinds (repro.obs.ops.flight_note) that become
# timeline annotations, keyed by note kind.
_ANNOTATED_NOTES = ("retry", "unit", "round", "flight-dump")

# Progress keys copied from a StatusBoard snapshot into each frame.
_PROGRESS_KEYS = (
    "state",
    "total_units",
    "units_done",
    "units_failed",
    "units_remaining",
    "units_per_second",
    "eta_seconds",
    "last_progress_at",
)


class TimelineRecorder:
    """Samples campaign history into a ``repro.timeline/1`` JSONL stream.

    ``path`` names the artifact (None records to memory only — the ring
    still feeds ``/timeline``).  ``board`` and ``resources`` are the
    live :class:`~repro.obs.statusd.StatusBoard` and
    :class:`~repro.obs.resources.ResourceSampler` to read each frame;
    both optional.  ``interval`` is the frame period; ``ring`` bounds
    the in-memory mirror.  :meth:`sample_once` is public and synchronous
    so tests and endpoints never race the thread.

    Lifecycle: :meth:`start` writes the header, registers the
    operational-note listener and starts the daemon thread;
    :meth:`finalize` takes a last frame, writes the ``end`` record and
    atomically publishes the artifact.  Usable as a context manager.
    """

    def __init__(
        self,
        path: Optional[str | os.PathLike] = None,
        *,
        interval: float = 1.0,
        ring: int = 512,
        board=None,
        resources=None,
        fields: Optional[Dict[str, object]] = None,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        if interval <= 0:
            raise ValidationError(
                f"timeline interval must be positive, got {interval}")
        if ring < 8:
            raise ValidationError(
                f"timeline ring must hold at least 8 records, got {ring}")
        self.path = None if path is None else os.fspath(path)
        self.interval = float(interval)
        self.board = board
        self.resources = resources
        self.fields = dict(fields or {})
        self._clock = clock
        self._wall_clock = wall_clock
        self._ring: collections.deque = collections.deque(maxlen=ring)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._ctx = None
        self._handle = None
        self._t0: Optional[float] = None
        self._last_t = 0.0
        self._seq = 0
        self.n_frames = 0
        self.n_annotations = 0
        self._prev_counters: Dict[str, float] = {}
        self._prev_alerts = 0
        self._started = False
        self._finalized = False

    # -- record plumbing -------------------------------------------------------

    def _now(self) -> float:
        """Seconds since start, forced monotone non-decreasing."""
        t = 0.0 if self._t0 is None else self._clock() - self._t0
        t = max(t, self._last_t)
        self._last_t = t
        return t

    def _emit(self, record: dict) -> None:
        with self._lock:
            self._ring.append(record)
            if self._handle is not None:
                try:
                    self._handle.write(json.dumps(record) + "\n")
                    self._handle.flush()
                except (OSError, ValueError):  # pragma: no cover - disk full
                    pass

    # -- frames ----------------------------------------------------------------

    def _counter_totals(self) -> Dict[str, float]:
        session = _session.current_session()
        totals: Dict[str, float] = {}
        # _instruments is the registry's name->instrument dict; reading
        # counter values is lock-free (ints are atomic under the GIL).
        for name, instrument in list(
                getattr(session.metrics, "_instruments", {}).items()):
            if not name.startswith(_FRAME_COUNTER_PREFIXES):
                continue
            if isinstance(instrument, Counter):
                totals[name] = instrument.value
        return totals

    def sample_once(self) -> dict:
        """Take one frame now; append it to ring + artifact; return it."""
        t = self._now()
        totals = self._counter_totals()
        deltas = {
            name: value - self._prev_counters.get(name, 0)
            for name, value in totals.items()
            if value != self._prev_counters.get(name, 0)
        }
        self._prev_counters = totals
        progress = None
        if self.board is not None:
            snap = self.board.snapshot()
            progress = {key: snap.get(key) for key in _PROGRESS_KEYS}
        resources = None
        if self.resources is not None:
            resources = self.resources.latest_compact()
        frame = {
            "kind": "frame",
            "seq": self._seq,
            "t": round(t, 6),
            "wall_time": self._wall_clock(),
            "counters": totals,
            "deltas": deltas,
            "progress": progress,
            "resources": resources,
        }
        self._seq += 1
        self.n_frames += 1
        self._emit(frame)
        self._check_alert_annotations(t, resources)
        return frame

    def _check_alert_annotations(self, t: float,
                                 resources: Optional[dict]) -> None:
        """Self-watch firings surface as annotations via per-frame deltas."""
        if not resources:
            return
        fired = resources.get("self_watch_alerts")
        if isinstance(fired, int) and fired > self._prev_alerts:
            self.annotate("alert", count=fired - self._prev_alerts,
                          state=resources.get("self_watch_state"))
            self._prev_alerts = fired

    # -- annotations -----------------------------------------------------------

    def annotate(self, event: str, /, **fields) -> dict:
        """Append one discrete annotation record at the current time."""
        record = {
            "kind": "annotation",
            "t": round(self._now(), 6),
            "wall_time": self._wall_clock(),
            "event": event,
            **fields,
        }
        self.n_annotations += 1
        self._emit(record)
        return record

    def _on_note(self, kind: str, fields: Dict[str, object]) -> None:
        """Operational-note listener: map pool/ops notes to annotations."""
        if kind not in _ANNOTATED_NOTES:
            return
        if kind == "retry":
            self.annotate("retry",
                          index=fields.get("index"),
                          attempt=fields.get("attempt"),
                          error_kind=fields.get("kind"),
                          delay_s=fields.get("delay_s"))
        elif kind == "unit":
            status = fields.get("status")
            if status not in ("failed", "error"):
                return
            error_kind = fields.get("kind") or fields.get("error_kind")
            event = {"timeout": "timeout",
                     "worker-death": "worker-death"}.get(error_kind,
                                                         "unit-failed")
            self.annotate(event, index=fields.get("index"),
                          error_kind=error_kind, status=status)
        elif kind == "round":
            self.annotate("round", pending=fields.get("pending"),
                          workers=fields.get("workers"),
                          round=fields.get("round"))
        elif kind == "flight-dump":
            self.annotate("flight-dump", reason=fields.get("reason"))

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "TimelineRecorder":
        """Write the header, hook operational notes, start the thread."""
        if self._started:
            return self
        self._started = True
        self._t0 = self._clock()
        self._last_t = 0.0
        if self.path is not None:
            self._ctx = atomic_write(self.path)
            self._handle = self._ctx.__enter__()
        header = {
            "kind": "header",
            "schema": TIMELINE_SCHEMA,
            "t": 0.0,
            "wall_time": self._wall_clock(),
            "pid": os.getpid(),
            "interval": self.interval,
            **({"fields": self.fields} if self.fields else {}),
        }
        self._emit(header)
        _ops.add_note_listener(self._on_note)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-timeline", daemon=True)
        self._thread.start()
        _log.info("timeline recording", path=self.path,
                  interval=self.interval)
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            self._stop.wait(self.interval)
            if self._stop.is_set():
                break
            try:
                self.sample_once()
            except Exception as exc:  # pragma: no cover - defensive: the
                # recorder must never take down the campaign it watches
                _log.warning("timeline frame failed",
                             error=f"{type(exc).__name__}: {exc}")

    def records(self) -> List[dict]:
        """The in-memory ring (most recent ``ring`` records), oldest first."""
        with self._lock:
            return list(self._ring)

    def finalize(self, status: str = "ok") -> Optional[str]:
        """Stop sampling, write the ``end`` record, publish atomically.

        Returns the artifact path (None for memory-only recorders).
        Idempotent; safe to call from a ``finally`` block.
        """
        if not self._started or self._finalized:
            return self.path if self._finalized else None
        self._finalized = True
        _ops.remove_note_listener(self._on_note)
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            self.sample_once()
        except Exception:  # pragma: no cover - final frame is best-effort
            pass
        self._emit({
            "kind": "end",
            "t": round(self._now(), 6),
            "wall_time": self._wall_clock(),
            "status": status,
            "frames": self.n_frames,
            "annotations": self.n_annotations,
        })
        if self._ctx is not None:
            try:
                fsync_handle(self._handle)
            except (OSError, ValueError):  # pragma: no cover
                pass
            ctx, self._ctx, self._handle = self._ctx, None, None
            try:
                ctx.__exit__(None, None, None)
            except OSError as exc:  # pragma: no cover - disk-full style
                _log.warning("timeline finalize failed", path=self.path,
                             error=f"{type(exc).__name__}: {exc}")
                return None
            _log.info("timeline written", path=self.path,
                      frames=self.n_frames, annotations=self.n_annotations)
        return self.path

    def __enter__(self) -> "TimelineRecorder":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finalize("error" if exc_type is not None else "ok")
        return False


# -- reading / validation ------------------------------------------------------

def read_timeline(path: str | os.PathLike) -> List[dict]:
    """Load a timeline JSONL file; tolerates a truncated final line.

    (The recorder only publishes complete files, but a copied-out
    temporary from a killed run should still load — same stance as the
    campaign journal.)
    """
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for i, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                # Only the final line may be torn.
                remainder = handle.read(1)
                if remainder:
                    raise ValidationError(
                        f"timeline line {i + 1} is corrupt (not the final "
                        f"line) in {os.fspath(path)!r}")
                break
    return records


_KNOWN_KINDS = ("header", "frame", "annotation", "end")


def validate_timeline(records: Sequence[dict]) -> Dict[str, int]:
    """Structural check of a timeline stream; returns counts by kind.

    Enforces: non-empty, header first with the right schema, only known
    record kinds, ``t`` present and monotone non-decreasing, frame
    ``seq`` strictly increasing, at most one ``end`` (and nothing after
    it).
    """
    if not records:
        raise ValidationError("empty timeline stream")
    header = records[0]
    if header.get("kind") != "header":
        raise ValidationError(
            f"timeline must start with a header record, got "
            f"{header.get('kind')!r}")
    if header.get("schema") != TIMELINE_SCHEMA:
        raise ValidationError(
            f"unsupported timeline schema {header.get('schema')!r} "
            f"(expected {TIMELINE_SCHEMA!r})")
    counts: Dict[str, int] = {}
    last_t = None
    last_seq = None
    ended = False
    for i, record in enumerate(records):
        kind = record.get("kind")
        if kind not in _KNOWN_KINDS:
            raise ValidationError(
                f"unknown timeline record kind {kind!r} at line {i + 1}")
        if kind == "header" and i != 0:
            raise ValidationError(f"duplicate header at line {i + 1}")
        if ended:
            raise ValidationError(
                f"record after the end record at line {i + 1}")
        t = record.get("t")
        if not isinstance(t, (int, float)) or t != t:
            raise ValidationError(
                f"timeline record at line {i + 1} lacks a finite t")
        if last_t is not None and t < last_t:
            raise ValidationError(
                f"non-monotone timeline time at line {i + 1}: "
                f"{t} < {last_t}")
        last_t = t
        if kind == "frame":
            seq = record.get("seq")
            if not isinstance(seq, int):
                raise ValidationError(
                    f"frame at line {i + 1} lacks an integer seq")
            if last_seq is not None and seq <= last_seq:
                raise ValidationError(
                    f"frame seq not increasing at line {i + 1}: "
                    f"{seq} after {last_seq}")
            last_seq = seq
        if kind == "end":
            ended = True
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def slice_timeline(
    records: Sequence[dict], *,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> List[dict]:
    """Records with ``since <= t <= until`` plus the header (always) and
    the end record (with its counters rebuilt for the slice)."""
    out: List[dict] = []
    n_frames = 0
    n_annotations = 0
    end: Optional[dict] = None
    for record in records:
        kind = record.get("kind")
        if kind == "header":
            out.append(record)
            continue
        if kind == "end":
            end = dict(record)
            continue
        t = record.get("t", 0.0)
        if since is not None and t < since:
            continue
        if until is not None and t > until:
            continue
        if kind == "frame":
            n_frames += 1
        elif kind == "annotation":
            n_annotations += 1
        out.append(record)
    if end is not None:
        end["frames"] = n_frames
        end["annotations"] = n_annotations
        out.append(end)
    return out


def timeline_summary(records: Sequence[dict]) -> dict:
    """Digest of one timeline: duration, frame/annotation counts,
    annotation breakdown by event, peak RSS, peak throughput, final
    progress."""
    counts = validate_timeline(records)
    frames = [r for r in records if r.get("kind") == "frame"]
    annotations = [r for r in records if r.get("kind") == "annotation"]
    by_event: Dict[str, int] = {}
    for record in annotations:
        event = str(record.get("event", "unknown"))
        by_event[event] = by_event.get(event, 0) + 1
    peak_parent_rss = None
    peak_worker_rss = None
    max_workers = 0
    peak_rate = None
    final_progress = None
    for frame in frames:
        resources = frame.get("resources") or {}
        rss = resources.get("parent_rss_bytes")
        if rss is not None:
            peak_parent_rss = rss if peak_parent_rss is None else max(
                peak_parent_rss, rss)
        workers = resources.get("workers") or []
        max_workers = max(max_workers, len(workers))
        for worker in workers:
            wrss = worker.get("rss_bytes")
            if wrss is not None:
                peak_worker_rss = wrss if peak_worker_rss is None else max(
                    peak_worker_rss, wrss)
        progress = frame.get("progress")
        if progress:
            final_progress = progress
            rate = progress.get("units_per_second")
            if rate is not None:
                peak_rate = rate if peak_rate is None else max(peak_rate, rate)
    end = records[-1] if records[-1].get("kind") == "end" else None
    return {
        "schema": TIMELINE_SCHEMA,
        "duration_seconds": records[-1].get("t", 0.0),
        "n_frames": counts.get("frame", 0),
        "n_annotations": counts.get("annotation", 0),
        "annotations_by_event": by_event,
        "peak_parent_rss_bytes": peak_parent_rss,
        "peak_worker_rss_bytes": peak_worker_rss,
        "max_workers_seen": max_workers,
        "peak_units_per_second": peak_rate,
        "final_progress": final_progress,
        "status": None if end is None else end.get("status"),
    }


def timeline_to_csv(records: Sequence[dict]) -> str:
    """Long-format CSV: one ``seq,t,wall_time,metric,value`` row per
    numeric frame field (progress, resources, counter totals)."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["seq", "t", "wall_time", "metric", "value"])
    for record in records:
        if record.get("kind") != "frame":
            continue
        seq = record.get("seq")
        t = record.get("t")
        wall = record.get("wall_time")
        rows: List[tuple] = []
        for key, value in (record.get("progress") or {}).items():
            if isinstance(value, (int, float)):
                rows.append((f"progress.{key}", value))
        resources = record.get("resources") or {}
        for key in ("parent_rss_bytes", "parent_cpu_seconds"):
            if isinstance(resources.get(key), (int, float)):
                rows.append((f"resources.{key}", resources[key]))
        for worker in resources.get("workers") or []:
            ordinal = worker.get("ordinal")
            for key in ("rss_bytes", "cpu_seconds"):
                if isinstance(worker.get(key), (int, float)):
                    rows.append(
                        (f"resources.worker.{ordinal}.{key}", worker[key]))
        for name, value in (record.get("counters") or {}).items():
            rows.append((f"counter.{name}", value))
        for metric, value in rows:
            writer.writerow([seq, t, wall, metric, value])
    return buffer.getvalue()
