"""CHAOS-style rolling-entropy aging detector (arXiv 1502.00781).

CHAOS observes that a degrading system's resource counters lose (or
abruptly gain) behavioural diversity as aging faults accumulate —
thrashing collapses a counter onto a few levels, leaks turn noise into a
near-deterministic ramp — and detects aging as a shift in the *entropy*
of the counter's short-term dynamics rather than in its level.

This implementation follows that recipe on counter increments:

1. Difference the counter (increments are level-free, so a slow drift
   does not masquerade as an entropy change by sliding values across
   fixed bins).
2. Slide a window over the increments; inside each window, histogram the
   increments into ``bins`` equal-width bins spanning that window's own
   range and compute the normalised Shannon entropy in [0, 1].
3. Calibrate the healthy entropy level on the leading
   ``calibration_fraction`` of entropy samples, then monitor the
   two-sided z-score: alarm when it stays beyond ``threshold_sigma`` for
   ``min_consecutive`` consecutive windows.

The detector competes in the scoreboard tournament as the ``entropy``
family; :meth:`RollingEntropyDetector.decision_scores` exposes the
z-score series that threshold sweeps (ROC) reuse without re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import check_in_range, check_positive, check_positive_int
from ..exceptions import AnalysisError
from ..trace.series import TimeSeries

__all__ = ["RollingEntropyDetector", "rolling_entropy"]


def rolling_entropy(
    values: np.ndarray,
    *,
    window: int,
    step: int,
    bins: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Normalised Shannon entropy of a sliding histogram of increments.

    Returns ``(right_edges, entropies)`` where ``right_edges`` indexes
    the last increment of each window (into the increments array) and
    each entropy lies in ``[0, 1]`` (0 for a constant window, 1 for a
    uniform spread over all bins).
    """
    check_positive_int(window, name="window", minimum=8)
    check_positive_int(step, name="step")
    check_positive_int(bins, name="bins", minimum=2)
    increments = np.diff(np.asarray(values, dtype=float))
    n = increments.size
    if n < window:
        raise AnalysisError(
            f"need at least {window} increments for one entropy window, "
            f"got {n}"
        )
    idx = []
    ent = []
    log_bins = np.log(bins)
    for end in range(window, n + 1, step):
        chunk = increments[end - window:end]
        lo = float(chunk.min())
        hi = float(chunk.max())
        if hi <= lo:
            h = 0.0
        else:
            counts, _ = np.histogram(chunk, bins=bins, range=(lo, hi))
            p = counts[counts > 0] / float(window)
            h = float(-np.sum(p * np.log(p)) / log_bins)
        idx.append(end - 1)
        ent.append(h)
    return np.asarray(idx, dtype=int), np.asarray(ent)


@dataclass
class RollingEntropyDetector:
    """Calibrate-then-monitor detector on rolling increment entropy.

    Parameters
    ----------
    window:
        Increments per entropy window.
    step:
        Increments between consecutive entropy evaluations.
    bins:
        Histogram bins per window.
    warmup_fraction:
        Leading fraction of the raw series discarded (boot transient).
    calibration_fraction:
        Fraction of the entropy series treated as the healthy baseline.
    threshold_sigma:
        Two-sided z-score alarm level.
    min_consecutive:
        Consecutive beyond-threshold windows required (debounce).
    """

    window: int = 128
    step: int = 16
    bins: int = 16
    warmup_fraction: float = 0.05
    calibration_fraction: float = 0.3
    threshold_sigma: float = 4.0
    min_consecutive: int = 3

    def __post_init__(self) -> None:
        check_positive_int(self.window, name="window", minimum=8)
        check_positive_int(self.step, name="step")
        check_positive_int(self.bins, name="bins", minimum=2)
        check_in_range(self.warmup_fraction, name="warmup_fraction",
                       low=0.0, high=0.5)
        check_in_range(self.calibration_fraction, name="calibration_fraction",
                       low=0.02, high=0.8)
        check_positive(self.threshold_sigma, name="threshold_sigma")
        check_positive_int(self.min_consecutive, name="min_consecutive")

    def _entropy_series(self, ts: TimeSeries) -> tuple[np.ndarray, np.ndarray, int]:
        """Entropy samples, their times, and the calibration count."""
        clean = ts.dropna()
        n_warm = int(np.floor(len(clean) * self.warmup_fraction))
        values = clean.values[n_warm:]
        # Entropy window `end` covers increments up to values[end]; stamp
        # each sample with the time of the last raw value it saw.
        times = clean.times[n_warm:]
        idx, ent = rolling_entropy(values, window=self.window,
                                   step=self.step, bins=self.bins)
        ent_times = times[idx + 1]
        n_cal = int(np.floor(ent.size * self.calibration_fraction))
        if n_cal < 8:
            raise AnalysisError(
                f"entropy calibration window has only {n_cal} samples; "
                "need >= 8 (series too short for the configured window/step)"
            )
        return ent_times, ent, n_cal

    def _zscores(self, ts: TimeSeries) -> tuple[np.ndarray, np.ndarray]:
        ent_times, ent, n_cal = self._entropy_series(ts)
        baseline = ent[:n_cal]
        mean = float(np.mean(baseline))
        std = float(np.std(baseline, ddof=1))
        if std == 0:
            std = max(abs(mean) * 1e-6, 1e-12)
        scores = np.abs(ent[n_cal:] - mean) / std
        return ent_times[n_cal:], scores

    def run(self, ts: TimeSeries) -> Optional[float]:
        """Return the first alarm time, or None."""
        times, scores = self._zscores(ts)
        beyond = scores > self.threshold_sigma
        run_length = 0
        for i, flag in enumerate(beyond):
            run_length = run_length + 1 if flag else 0
            if run_length >= self.min_consecutive:
                return float(times[i])
        return None

    def decision_scores(self, ts: TimeSeries) -> tuple[np.ndarray, np.ndarray]:
        """Two-sided entropy z-score per monitored window.

        The configured alarm sits at ``threshold_sigma`` (debounce
        excluded, as for the other families).  Observation-only:
        :meth:`run` is untouched.
        """
        return self._zscores(ts)
