"""Baseline aging detectors the paper's method is compared against.

* :class:`TrendExhaustionDetector` — the measurement-based approach of
  Vaidyanathan & Trivedi (1998)/Garg et al.: detect a monotone trend in
  a resource counter (Mann–Kendall), estimate its slope robustly (Sen),
  extrapolate to exhaustion, and alarm when the predicted time to
  exhaustion drops below a horizon.
* :class:`RawThresholdDetector` — the naive operator rule: alarm when
  the raw counter itself crosses a fixed fraction of its healthy level.
* :class:`RollingEntropyDetector` — the CHAOS-style rival (arXiv
  1502.00781): alarm when the Shannon entropy of the counter's
  short-term increments departs from its healthy level.

Every detector also exposes ``decision_scores`` — the per-sample
decision statistic the scoreboard's ROC sweeps reuse without
re-simulation (see :mod:`repro.analysis.scoreboard`).
"""

from .trend import TrendExhaustionDetector, TrendAlarm, predict_exhaustion_time
from .naive import RawThresholdDetector
from .entropy import RollingEntropyDetector, rolling_entropy

__all__ = [
    "TrendExhaustionDetector",
    "TrendAlarm",
    "predict_exhaustion_time",
    "RawThresholdDetector",
    "RollingEntropyDetector",
    "rolling_entropy",
]
