"""Baseline aging detectors the paper's method is compared against.

* :class:`TrendExhaustionDetector` — the measurement-based approach of
  Vaidyanathan & Trivedi (1998)/Garg et al.: detect a monotone trend in
  a resource counter (Mann–Kendall), estimate its slope robustly (Sen),
  extrapolate to exhaustion, and alarm when the predicted time to
  exhaustion drops below a horizon.
* :class:`RawThresholdDetector` — the naive operator rule: alarm when
  the raw counter itself crosses a fixed fraction of its healthy level.
"""

from .trend import TrendExhaustionDetector, TrendAlarm, predict_exhaustion_time
from .naive import RawThresholdDetector

__all__ = [
    "TrendExhaustionDetector",
    "TrendAlarm",
    "predict_exhaustion_time",
    "RawThresholdDetector",
]
