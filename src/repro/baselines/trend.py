"""Trend-extrapolation exhaustion prediction (Vaidyanathan & Trivedi 1998).

The classical measurement-based rejuvenation trigger: a depleting
resource (here `Available Bytes`, which trends downward as leaks
accumulate) is fitted with a robust slope over a sliding history window;
the zero-crossing of the fitted line predicts the exhaustion time; the
detector alarms when that prediction comes within ``horizon`` seconds of
now *and* the trend is statistically significant (Mann–Kendall).

This is the baseline the multifractal detector is compared against in
experiment T4.  Its known weaknesses — which the comparison surfaces —
are (a) bursty counters give noisy slopes, so predictions whipsaw, and
(b) trim/thrash dynamics near death *raise* AvailableBytes transiently,
stalling the extrapolation exactly when it matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import check_in_range, check_positive, check_positive_int
from ..exceptions import AnalysisError
from ..stats.trend import mann_kendall, sen_slope
from ..trace.series import TimeSeries


@dataclass(frozen=True)
class TrendAlarm:
    """Outcome of the trend detector over one counter series.

    Attributes
    ----------
    alarm_time:
        First time the predicted exhaustion came within the horizon
        (None when it never did).
    predicted_exhaustion:
        The exhaustion-time prediction made at the alarm (None without
        an alarm).
    slope_at_alarm:
        Sen slope (units/second) at the alarm.
    source_name:
        The analysed counter.
    """

    alarm_time: Optional[float]
    predicted_exhaustion: Optional[float]
    slope_at_alarm: float
    source_name: str

    @property
    def fired(self) -> bool:
        """True when an alarm was raised."""
        return self.alarm_time is not None


def predict_exhaustion_time(
    times: np.ndarray,
    values: np.ndarray,
    *,
    floor: float = 0.0,
) -> Optional[float]:
    """Extrapolate a Sen-slope fit to the time the counter hits ``floor``.

    Returns None when the robust slope is non-negative (no depletion in
    sight).
    """
    slope = sen_slope(times, values)
    if slope >= 0:
        return None
    level = float(np.median(values))
    anchor = float(np.median(times))
    return anchor + (floor - level) / slope


@dataclass
class TrendExhaustionDetector:
    """Sliding-window Sen-slope exhaustion predictor.

    Parameters
    ----------
    window_seconds:
        History length used for each prediction.
    step_seconds:
        How often a new prediction is made.
    horizon_seconds:
        Alarm when predicted time-to-exhaustion falls below this.
    floor:
        Counter level considered "exhausted" (0 for AvailableBytes).
    alpha:
        Mann–Kendall significance level required of the trend.
    min_samples:
        Minimum samples per window.
    """

    window_seconds: float = 3600.0
    step_seconds: float = 300.0
    horizon_seconds: float = 7200.0
    floor: float = 0.0
    alpha: float = 0.05
    min_samples: int = 64

    def __post_init__(self) -> None:
        check_positive(self.window_seconds, name="window_seconds")
        check_positive(self.step_seconds, name="step_seconds")
        check_positive(self.horizon_seconds, name="horizon_seconds")
        check_in_range(self.alpha, name="alpha", low=0.0, high=1.0,
                       inclusive_low=False, inclusive_high=False)
        check_positive_int(self.min_samples, name="min_samples", minimum=8)

    def run(self, ts: TimeSeries) -> TrendAlarm:
        """Scan the series; return the first within-horizon prediction."""
        clean = ts.dropna()
        if len(clean) < self.min_samples:
            raise AnalysisError(
                f"series {ts.name!r} has {len(clean)} samples; "
                f"need >= {self.min_samples}"
            )
        t0 = clean.times[0] + self.window_seconds
        t_end = clean.times[-1]
        now = t0
        while now <= t_end:
            window = clean.slice_time(now - self.window_seconds, now + 1e-9)
            if len(window) >= self.min_samples:
                alarm = self._evaluate(window, now)
                if alarm is not None:
                    return TrendAlarm(
                        alarm_time=now,
                        predicted_exhaustion=alarm[0],
                        slope_at_alarm=alarm[1],
                        source_name=ts.name,
                    )
            now += self.step_seconds
        return TrendAlarm(
            alarm_time=None, predicted_exhaustion=None,
            slope_at_alarm=float("nan"), source_name=ts.name,
        )

    def decision_scores(self, ts: TimeSeries) -> tuple[np.ndarray, np.ndarray]:
        """Per-prediction urgency score along the same scan :meth:`run` does.

        At each prediction step the score is ``horizon_seconds /
        (exhaustion - now)`` when the trend is significantly decreasing
        and the extrapolation predicts future exhaustion (0 otherwise, and
        capped at 1e6 when the prediction is already past) — so the
        configured alarm sits at score 1.  Observation-only: :meth:`run`
        is untouched.
        """
        clean = ts.dropna()
        if len(clean) < self.min_samples:
            raise AnalysisError(
                f"series {ts.name!r} has {len(clean)} samples; "
                f"need >= {self.min_samples}"
            )
        out_t: list[float] = []
        out_s: list[float] = []
        now = clean.times[0] + self.window_seconds
        t_end = clean.times[-1]
        while now <= t_end:
            window = clean.slice_time(now - self.window_seconds, now + 1e-9)
            score = 0.0
            if len(window) >= self.min_samples:
                mk = mann_kendall(window.values, alpha=self.alpha)
                if mk.trend == "decreasing":
                    slope = sen_slope(window.times, window.values)
                    if slope < 0:
                        level = float(np.median(window.values))
                        anchor = float(np.median(window.times))
                        exhaustion = anchor + (self.floor - level) / slope
                        remaining = exhaustion - now
                        if remaining <= 0:
                            score = 1e6
                        else:
                            score = min(self.horizon_seconds / remaining, 1e6)
            out_t.append(now)
            out_s.append(score)
            now += self.step_seconds
        return np.asarray(out_t), np.asarray(out_s)

    def _evaluate(self, window: TimeSeries, now: float) -> Optional[tuple[float, float]]:
        """One prediction; returns (exhaustion_time, slope) when alarming."""
        mk = mann_kendall(window.values, alpha=self.alpha)
        if mk.trend != "decreasing":
            return None
        slope = sen_slope(window.times, window.values)
        if slope >= 0:
            return None
        level = float(np.median(window.values))
        anchor = float(np.median(window.times))
        exhaustion = anchor + (self.floor - level) / slope
        if exhaustion - now <= self.horizon_seconds:
            return exhaustion, slope
        return None
