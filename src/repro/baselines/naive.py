"""The naive operator rule: alarm on a raw-counter threshold.

Alarm when the counter stays below ``fraction_of_baseline`` times its
healthy median for ``min_consecutive`` consecutive samples.  Cheap and
common in practice; the comparison table shows why it is a poor warning
(for a leaking system it fires very late — the counter only reaches the
threshold when exhaustion is already imminent — and thrashing-induced
rebounds can bounce it back out of alarm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import check_in_range, check_positive_int
from ..exceptions import AnalysisError
from ..trace.series import TimeSeries


@dataclass
class RawThresholdDetector:
    """Alarm when the raw counter drops below a fraction of its baseline.

    Parameters
    ----------
    fraction_of_baseline:
        Threshold as a fraction of the healthy (calibration) median.
    calibration_fraction:
        Leading fraction of the series used to establish the healthy
        median.
    min_consecutive:
        Consecutive below-threshold samples required (debounce).
    """

    fraction_of_baseline: float = 0.2
    calibration_fraction: float = 0.2
    min_consecutive: int = 10

    def __post_init__(self) -> None:
        check_in_range(self.fraction_of_baseline, name="fraction_of_baseline",
                       low=0.0, high=1.0, inclusive_low=False, inclusive_high=False)
        check_in_range(self.calibration_fraction, name="calibration_fraction",
                       low=0.02, high=0.8)
        check_positive_int(self.min_consecutive, name="min_consecutive")

    def _calibrate(self, ts: TimeSeries) -> tuple[TimeSeries, int, float]:
        clean = ts.dropna()
        n = len(clean)
        n_cal = int(n * self.calibration_fraction)
        if n_cal < 8:
            raise AnalysisError(
                f"calibration window has {n_cal} samples; need >= 8"
            )
        baseline = float(np.median(clean.values[:n_cal]))
        return clean, n_cal, baseline

    def run(self, ts: TimeSeries) -> Optional[float]:
        """Return the first alarm time, or None."""
        clean, n_cal, baseline = self._calibrate(ts)
        limit = baseline * self.fraction_of_baseline
        below = clean.values[n_cal:] < limit
        times = clean.times[n_cal:]
        run_length = 0
        for i, flag in enumerate(below):
            run_length = run_length + 1 if flag else 0
            if run_length >= self.min_consecutive:
                return float(times[i])
        return None

    def decision_scores(self, ts: TimeSeries) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample depletion fraction over the monitored segment.

        The score is ``1 - value / baseline`` — 0 at the healthy median,
        1 at full exhaustion — so the configured alarm level sits at
        ``1 - fraction_of_baseline``.  Observation-only: :meth:`run` is
        untouched (its consecutive-sample debounce is not part of the
        statistic).
        """
        clean, n_cal, baseline = self._calibrate(ts)
        if baseline <= 0:
            raise AnalysisError(
                f"baseline median must be positive to score depletion, "
                f"got {baseline}"
            )
        scores = 1.0 - clean.values[n_cal:] / baseline
        return clean.times[n_cal:], scores
