"""Command-line interface: ``python -m repro <command>``.

Four subcommands covering the library's main workflows:

``simulate``
    Run a stress-to-crash simulation and write the counter traces to a
    CSV file::

        python -m repro simulate --profile nt4 --seed 7 --out run.csv

``analyze``
    Run the aging analysis on a trace CSV (produced by ``simulate`` or
    hand-converted from a real collector) and print the warning
    report::

        python -m repro analyze run.csv --counter AvailableBytes

``validate``
    Quick self-check: synthesise ground-truth signals and verify the
    estimators recover their exponents (a smoke-test version of the T5
    benchmark)::

        python -m repro validate

``campaign``
    Run a small detection campaign (aging cell + healthy control) on a
    named scenario and print/persist the aggregate table; ``--workers``
    fans the seeded runs across a process pool with bit-identical
    results::

        python -m repro campaign --scenario webserver --runs 3 --out results.json
        python -m repro campaign --runs 8 --workers 4

    ``--detectors`` turns the campaign into a detector tournament: every
    cell is replicated once per named detector family (same seeds, so
    the families score identical simulated runs) and the league table,
    ROC curves and lead-time quantiles land in a ``repro.scoreboard/1``
    artifact and the dashboard::

        python -m repro campaign --runs 4 --detectors holder,trend,entropy \\
            --scoreboard scoreboard.json --dashboard campaign.html

``scoreboard``
    Rebuild the detector-tournament scoreboard from saved campaign
    results (a ``--out`` JSON) or archived run manifests alone — no
    re-simulation — print the league table and optionally write the
    artifact, an OpenMetrics rendering and the dashboard::

        python -m repro scoreboard results.json -o scoreboard.json
        python -m repro scoreboard runs/ --dashboard campaign.html

``telemetry``
    Summarise run manifests written with ``--telemetry-out`` (stage
    durations, events, metrics) as tables, or export them as flat
    JSON/CSV or Prometheus/OpenMetrics text::

        python -m repro telemetry runs/seed7
        python -m repro telemetry runs/seed7 --format prom

``bench``
    Run the curated hot-path benchmark suite, write a versioned
    ``BENCH_<date>_<gitsha>.json`` perf-trajectory file and compare it
    against the latest baseline (regressions fail the run)::

        python -m repro bench --quick --out benchmarks/results
        python -m repro bench --list        # table of archived trajectories

``watch``
    Watch a live simulation (or a replayed trace CSV) with the online
    aging monitor: stream schema-versioned JSONL events (samples,
    indicator points, detector transitions, alarms, alert-rule firings,
    status heartbeats, crash/end), optionally under declarative alert
    rules from a TOML/JSON file::

        python -m repro watch --scenario stress --seed 7 \\
            --alerts rules.toml --events out.jsonl
        python -m repro watch --trace run.csv --events out.jsonl

``dashboard``
    Render a self-contained HTML dashboard (inline SVG, no external
    resources) from a watch event stream, or a campaign
    detection-quality dashboard from run-manifest directories::

        python -m repro dashboard out.jsonl -o report.html
        python -m repro dashboard runs/ -o campaign.html

``timeline``
    Summarise, slice or export a campaign history recorded with
    ``campaign --timeline`` / ``watch --timeline`` (schema
    ``repro.timeline/1``): a digest of throughput/RSS/annotations, a
    time-range slice as a new artifact, long-format CSV, timestamped
    OpenMetrics text, or the timeline dashboard rebuilt from the
    artifact alone (optionally with a ``repro.costs/1`` profile from
    ``campaign --costs``)::

        python -m repro timeline tl.jsonl
        python -m repro timeline tl.jsonl --since 10 --until 60 --csv tl.csv
        python -m repro timeline tl.jsonl --dashboard tl.html --costs costs.json

Every workload subcommand additionally accepts ``--log-level
{debug,info,warning,error,off}`` (structured log lines on stderr),
``--telemetry-out DIR`` (write a run manifest + event log into DIR) and
``--perf-profile`` (per-hot-path wall/CPU profile, recorded into the
manifest or printed when no manifest is written).  A run that raises
still writes its manifest, with ``outcome.status = "error"`` and the
exception recorded.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from .obs import LOG_LEVELS

_SIM_PROFILES = ("nt4", "w2k")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    from .memsim.scenarios import SCENARIO_NAMES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Software aging and multifractality of memory resources "
                    "(DSN 2003 reproduction).",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--log-level", choices=LOG_LEVELS, default=None,
                        help="emit structured log lines at this level")
    common.add_argument("--telemetry-out", default=None, metavar="DIR",
                        help="write a run manifest (manifest.json + "
                             "events.jsonl) into DIR")
    common.add_argument("--perf-profile", action="store_true",
                        help="profile hot paths (wall/CPU per call); "
                             "recorded into the manifest, or printed when "
                             "no --telemetry-out is given")
    common.add_argument("--perf-memory", action="store_true",
                        help="also trace per-call peak allocation size "
                             "(implies --perf-profile; slow)")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", parents=[common],
                         help="run a stress-to-crash simulation")
    sim.add_argument("--profile", choices=_SIM_PROFILES + SCENARIO_NAMES,
                     default="nt4",
                     help="OS profile (nt4/w2k) or named scenario "
                          "(stress/webserver/database/batch on nt4)")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--max-seconds", type=float, default=80_000.0)
    sim.add_argument("--fault-factor", type=float, default=1.0,
                     help="scale every aging-fault intensity")
    sim.add_argument("--out", default=None,
                     help="output trace path: *.csv writes the CSV codec, "
                          "anything else a memory-mapped columnar run "
                          "directory (optional when --telemetry-out is "
                          "given)")

    ana = sub.add_parser("analyze", parents=[common],
                         help="aging analysis of a recorded trace")
    ana.add_argument("trace", help="trace produced by `repro simulate` "
                                   "(CSV file or columnar run directory)")
    ana.add_argument("--counter", default="AvailableBytes")
    ana.add_argument("--indicator", choices=("mean", "variance"), default="mean")
    ana.add_argument("--scheme", choices=("cusum", "ewma", "threshold"),
                     default="cusum")

    sub.add_parser("validate", parents=[common],
                   help="estimator self-check on ground truth")

    camp = sub.add_parser("campaign", parents=[common],
                          help="aging + healthy-control detection campaign")
    camp.add_argument("--scenario", default="stress")
    camp.add_argument("--profile", choices=_SIM_PROFILES, default="nt4")
    camp.add_argument("--runs", type=int, default=3)
    camp.add_argument("--base-seed", type=int, default=1)
    camp.add_argument("--max-seconds", type=float, default=60_000.0)
    camp.add_argument("--workers", type=int, default=None, metavar="N",
                      help="worker processes for the campaign's (cell, run) "
                           "work units; results are bit-identical to "
                           "sequential (default: all cores; 1 = sequential)")
    camp.add_argument("--engine", choices=("object", "vector"),
                      default="object",
                      help="simulation core: 'object' runs one Machine per "
                           "seed through the event kernel; 'vector' advances "
                           "each cell as one struct-of-arrays fleet "
                           "(statistically equivalent counters, order-of-"
                           "magnitude faster at fleet scale)")
    camp.add_argument("--holder-engine", default="batch",
                      metavar="NAME",
                      help="registered Hölder engine analysing each run's "
                           "trace (batch/sliding/online; full-window "
                           "estimates are identical across engines, so "
                           "payloads are bit-identical; "
                           "default: %(default)s)")
    camp.add_argument("--out", default=None, help="optional JSON output path")
    camp.add_argument("--detectors", default=None, metavar="NAME[,NAME...]",
                      help="run the scenario cells once per named detector "
                           "family (detector tournament); see "
                           "`repro scoreboard` for the artifact this feeds")
    camp.add_argument("--scoreboard", default=None, metavar="JSON",
                      help="write the detector-tournament scoreboard "
                           "(schema repro.scoreboard/1) to this path")
    camp.add_argument("--dashboard", default=None, metavar="HTML",
                      help="also render the detection-quality dashboard "
                           "to this HTML file")
    camp.add_argument("--timeout", type=float, default=None, metavar="SEC",
                      help="wall-clock budget per (cell, run) work unit; "
                           "a unit past it is killed and retried "
                           "(parallel mode only)")
    camp.add_argument("--retries", type=int, default=0, metavar="N",
                      help="re-run a unit up to N times after a worker "
                           "death, timeout or transient failure, with "
                           "exponential backoff; retried units recompute "
                           "identical results (default: %(default)s)")
    camp.add_argument("--journal", default=None, metavar="JSONL",
                      help="append-only checkpoint journal: every finished "
                           "unit is recorded (fsynced) the moment it "
                           "completes, keyed to this campaign's "
                           "config/seed fingerprint")
    camp.add_argument("--resume", action="store_true",
                      help="load --journal first and execute only the "
                           "units it is missing; the final payload is "
                           "bit-identical to an uninterrupted run")
    camp.add_argument("--allow-partial", action="store_true",
                      help="on permanent unit failures, report an "
                           "'incomplete' outcome listing the missing "
                           "units (exit 1) instead of raising")
    camp.add_argument("--chaos", default=None, metavar="SPEC",
                      help="dev flag: deterministically sabotage your own "
                           "campaign's work units to exercise the "
                           "resilience layer.  SPEC is comma-separated "
                           "key=value pairs: kill=RATE, hang=RATE, "
                           "raise=RATE, hang-seconds=SEC, seed=N, "
                           "max-failures=N (e.g. "
                           "--chaos kill=0.3,raise=0.2,seed=1)")
    camp.add_argument("--status-port", type=int, default=None, metavar="PORT",
                      help="serve live /status (JSON progress + ETA + "
                           "worker resources), /metrics (OpenMetrics) and "
                           "/healthz on 127.0.0.1:PORT while the campaign "
                           "runs (0 = pick an ephemeral port)")
    camp.add_argument("--self-watch", action="store_true",
                      help="stream the campaign parent's own RSS through "
                           "an online aging monitor and alert if the "
                           "harness itself leaks")
    camp.add_argument("--flight-record", default=None, metavar="JSON",
                      help="arm the flight recorder: keep a bounded ring "
                           "buffer of recent log/span/unit records and "
                           "dump it to this path (atomic JSON, schema "
                           "repro.flight-record/1) on timeout-kill, "
                           "worker death or unhandled error")
    camp.add_argument("--timeline", default=None, metavar="JSONL",
                      help="record the campaign's history (periodic "
                           "progress/counter/RSS frames + retry/timeout/"
                           "death annotations) to this append-only JSONL "
                           "artifact (schema repro.timeline/1); explore it "
                           "with `repro timeline`")
    camp.add_argument("--timeline-every", type=float, default=1.0,
                      metavar="SEC",
                      help="seconds between timeline frames "
                           "(default: %(default)s)")
    camp.add_argument("--costs", default=None, metavar="JSON",
                      help="after the campaign, fold the merged span tree "
                           "into a cross-worker cost profile (schema "
                           "repro.costs/1; wall share per pipeline phase, "
                           "per worker, top cost centers) and write it "
                           "here")

    tel = sub.add_parser("telemetry", parents=[common],
                         help="summarise or export run manifests")
    tel.add_argument("path", help="manifest.json, a run directory, or a "
                                  "directory of run directories")
    tel.add_argument("--metrics", action="store_true",
                     help="also print each run's full metrics snapshot "
                          "(table format only)")
    tel.add_argument("--spans", action="store_true",
                     help="also print each run's span tree (indented by "
                          "nesting, with worker pid/ordinal tags for "
                          "spans merged from pool workers; table format "
                          "only)")
    tel.add_argument("--format", choices=("table", "json", "csv", "prom"),
                     default="table",
                     help="output format: report tables (default), flat "
                          "JSON, flat CSV, or Prometheus/OpenMetrics text")

    ben = sub.add_parser("bench", parents=[common],
                         help="hot-path benchmark suite -> BENCH_*.json "
                              "perf trajectory")
    ben.add_argument("--quick", action="store_true",
                     help="shrink workloads ~4-10x (CI smoke mode)")
    ben.add_argument("--out", default="benchmarks/results", metavar="DIR",
                     help="directory for BENCH_<date>_<gitsha>.json "
                          "trajectory files (default: %(default)s)")
    ben.add_argument("--baseline", default=None, metavar="PATH",
                     help="BENCH file or directory to compare against "
                          "(default: latest matching file in --out)")
    ben.add_argument("--threshold", type=float, default=0.25,
                     help="regression threshold as a fraction "
                          "(default: %(default)s = 25%%)")
    ben.add_argument("--repeats", type=int, default=None,
                     help="timed iterations per case (default: 3 quick, "
                          "5 full)")
    ben.add_argument("--select", default=None, metavar="PAT[,PAT...]",
                     help="only run cases whose name contains a pattern")
    ben.add_argument("--no-memory", action="store_true",
                     help="skip the tracemalloc memory-peak pass")
    ben.add_argument("--no-normalize", action="store_true",
                     help="compare raw wall times (skip calibration "
                          "normalization)")
    ben.add_argument("--no-compare", action="store_true",
                     help="write the trajectory file without comparing "
                          "against a baseline")
    ben.add_argument("--list", action="store_true",
                     help="list archived BENCH_*.json trajectory files "
                          "(date, sha, mode, per-case best wall) and exit")
    ben.add_argument("--list-cases", action="store_true",
                     help="list the benchmark suite's cases and exit")

    wat = sub.add_parser("watch", parents=[common],
                         help="live online-monitor watch over a simulation "
                              "or replayed trace")
    src = wat.add_mutually_exclusive_group()
    src.add_argument("--scenario", choices=SCENARIO_NAMES, default=None,
                     help="run and watch a live scenario simulation "
                          "(default: stress)")
    src.add_argument("--trace", default=None, metavar="TRACE",
                     help="replay a recorded trace (CSV file or columnar "
                          "run directory) instead of simulating")
    wat.add_argument("--profile", choices=_SIM_PROFILES, default="nt4")
    wat.add_argument("--seed", type=int, default=7)
    wat.add_argument("--max-seconds", type=float, default=80_000.0)
    wat.add_argument("--fault-factor", type=float, default=1.0)
    wat.add_argument("--counter", default="AvailableBytes")
    wat.add_argument("--alerts", default=None, metavar="RULES",
                     help="alert rules file (.toml or .json)")
    wat.add_argument("--events", default=None, metavar="JSONL",
                     help="write the watch event stream to this JSONL file")
    wat.add_argument("--dashboard", default=None, metavar="HTML",
                     help="render the run dashboard to this HTML file "
                          "after the watch session")
    wat.add_argument("--status-every", type=float, default=600.0,
                     help="simulated seconds between status heartbeats "
                          "(0 disables; default: %(default)s)")
    wat.add_argument("--sample-every", type=int, default=4,
                     help="record every Nth counter sample in the stream "
                          "(0 = none; the monitor sees all; "
                          "default: %(default)s)")
    wat.add_argument("--chunk-size", type=int, default=128,
                     help="monitor: recompute cadence in samples "
                          "(default: %(default)s)")
    wat.add_argument("--history", type=int, default=2048,
                     help="monitor: rolling sample history "
                          "(default: %(default)s)")
    wat.add_argument("--indicator-window", type=int, default=512,
                     help="monitor: Hölder window length "
                          "(default: %(default)s)")
    wat.add_argument("--calibration", type=int, default=10,
                     help="monitor: indicator points used to calibrate "
                          "the detector (default: %(default)s)")
    from .core.engines import holder_engine_names

    wat.add_argument("--engine", choices=holder_engine_names(),
                     default="sliding",
                     help="registered Hölder engine: 'sliding'/'online' "
                          "compute only the indicator-window tail per emit "
                          "(same points to machine precision, a fraction "
                          "of the CWT work); 'batch' recomputes the full "
                          "history window (default: %(default)s)")
    wat.add_argument("--quiet", action="store_true",
                     help="suppress live status lines on stdout")
    wat.add_argument("--status-port", type=int, default=None, metavar="PORT",
                     help="serve live /status, /metrics and /healthz on "
                          "127.0.0.1:PORT while the watch runs "
                          "(0 = pick an ephemeral port)")
    wat.add_argument("--timeline", default=None, metavar="JSONL",
                     help="record the watch session's history (progress "
                          "heartbeats + parent RSS frames) to this "
                          "repro.timeline/1 JSONL artifact")
    wat.add_argument("--timeline-every", type=float, default=1.0,
                     metavar="SEC",
                     help="seconds between timeline frames "
                          "(default: %(default)s)")

    score = sub.add_parser("scoreboard", parents=[common],
                           help="rebuild the detector-tournament scoreboard "
                                "from saved campaign artifacts")
    score.add_argument("path",
                       help="campaign results JSON (from `repro campaign "
                            "--out`) or a manifest/run directory")
    score.add_argument("-o", "--out", default=None, metavar="JSON",
                       help="write the repro.scoreboard/1 artifact here")
    score.add_argument("--prom", default=None, metavar="TXT",
                       help="also write the scoreboard as "
                            "Prometheus/OpenMetrics text")
    score.add_argument("--dashboard", default=None, metavar="HTML",
                       help="render the campaign dashboard (including the "
                            "tournament section) to this HTML file")

    dash = sub.add_parser("dashboard", parents=[common],
                          help="render a self-contained HTML dashboard")
    dash.add_argument("path",
                      help="a watch-events JSONL file (run dashboard) or "
                           "a manifest/run directory (campaign dashboard)")
    dash.add_argument("-o", "--out", default="dashboard.html",
                      help="output HTML path (default: %(default)s)")
    dash.add_argument("--title", default=None, help="dashboard title")

    tline = sub.add_parser("timeline", parents=[common],
                           help="summarise, slice or export a saved "
                                "repro.timeline/1 campaign history")
    tline.add_argument("path",
                       help="timeline JSONL artifact (from `campaign "
                            "--timeline` / `watch --timeline`)")
    tline.add_argument("--since", type=float, default=None, metavar="SEC",
                       help="keep records with t >= SEC (recorder-relative "
                            "seconds)")
    tline.add_argument("--until", type=float, default=None, metavar="SEC",
                       help="keep records with t <= SEC")
    tline.add_argument("--slice", dest="slice_out", default=None,
                       metavar="JSONL",
                       help="write the selected time range as a new "
                            "timeline artifact")
    tline.add_argument("--csv", default=None, metavar="CSV",
                       help="export the frames as long-format CSV "
                            "(seq,t,wall_time,metric,value)")
    tline.add_argument("--prom", default=None, metavar="TXT",
                       help="export the frames as timestamped "
                            "Prometheus/OpenMetrics text (promtool "
                            "backfill form)")
    tline.add_argument("--dashboard", default=None, metavar="HTML",
                       help="render the timeline dashboard (throughput, "
                            "per-worker RSS, ETA, annotations) from the "
                            "artifact alone")
    tline.add_argument("--costs", default=None, metavar="JSON",
                       help="repro.costs/1 profile (from `campaign "
                            "--costs`) to include in the dashboard")
    tline.add_argument("--title", default=None, help="dashboard title")
    return parser


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run one machine and archive its traces."""
    from .memsim import Machine, MachineConfig
    from .obs import session as obs_session
    from .trace import write_bundle

    if args.out is None and args.telemetry_out is None:
        print("error: simulate needs --out and/or --telemetry-out",
              file=sys.stderr)
        return 2
    if args.profile in _SIM_PROFILES:
        ctor = MachineConfig.nt4 if args.profile == "nt4" else MachineConfig.w2k
        base = ctor(seed=args.seed, max_run_seconds=args.max_seconds)
        if args.fault_factor != 1.0:
            base = ctor(seed=args.seed, max_run_seconds=args.max_seconds,
                        faults=base.faults.scaled(args.fault_factor))
        machine = Machine(base)
    else:
        from .memsim.scenarios import build_scenario

        machine = build_scenario(
            args.profile, seed=args.seed, max_run_seconds=args.max_seconds,
            fault_factor=args.fault_factor,
        )
    print(f"simulating {args.profile} seed={args.seed} "
          f"(budget {args.max_seconds:.0f}s)...")
    result = machine.run()
    if args.out is not None:
        with obs_session.span("write-trace", path=str(args.out)):
            write_bundle(result.bundle, args.out)
    dest = args.out if args.out is not None else "(not archived)"
    if result.crashed:
        print(f"crashed at t={result.crash_time:.0f}s ({result.crash_reason}); "
              f"traces -> {dest}")
    else:
        print(f"survived {result.duration:.0f}s; traces -> {dest}")
    args._outcome.update(
        crashed=result.crashed,
        crash_time=result.crash_time,
        crash_reason=result.crash_reason,
        duration=result.duration,
        trace_csv=None if args.out is None else str(args.out),
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Analyse one counter of a trace file."""
    from .core import analyze_counter
    from .core.detectors import DetectorConfig
    from .trace import read_bundle

    bundle = read_bundle(args.trace)
    if args.counter not in bundle:
        print(f"error: no counter {args.counter!r} in {args.trace}; "
              f"available: {bundle.names}", file=sys.stderr)
        return 2
    analysis = analyze_counter(
        bundle[args.counter],
        indicator=args.indicator,
        detector_config=DetectorConfig(scheme=args.scheme),
    )
    alarm = analysis.alarm
    print(f"counter      : {args.counter}")
    print(f"indicator    : windowed Hölder {analysis.indicator.statistic}")
    print(f"scheme       : {alarm.scheme}")
    print(f"baseline     : {alarm.baseline_mean:.4g} ± {alarm.baseline_std:.4g}")
    if alarm.fired:
        print(f"WARNING at   : {alarm.alarm_time:.0f}s")
    else:
        print("no warning fired")
    crash_time = bundle.metadata.get("crash_time")
    if crash_time is not None:
        print(f"crash (truth): {float(crash_time):.0f}s")
        if alarm.fired:
            print(f"lead time    : {float(crash_time) - alarm.alarm_time:.0f}s")
    args._outcome.update(
        counter=args.counter,
        alarm_fired=alarm.fired,
        alarm_time=alarm.alarm_time if alarm.fired else None,
        crash_time=None if crash_time is None else float(crash_time),
    )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Estimator smoke check against closed-form exponents."""
    from .fractal import dfa, wavelet_leader_analysis
    from .generators import fbm, fgn, weierstrass
    from .core import wavelet_holder

    failures = 0

    def check(label: str, got: float, want: float, tol: float) -> None:
        nonlocal failures
        ok = abs(got - want) <= tol
        status = "ok " if ok else "FAIL"
        print(f"  [{status}] {label}: got {got:+.3f}, want {want:+.3f} ± {tol}")
        if not ok:
            failures += 1

    print("validating estimators on ground-truth signals...")
    for h_true in (0.3, 0.7):
        x = fgn(2**13, h_true, rng=np.random.default_rng(1))
        check(f"DFA on fGn H={h_true}", dfa(x).alpha, h_true, 0.1)
    w = weierstrass(2**12, 0.5)
    check("wavelet Hölder on Weierstrass h=0.5",
          float(np.mean(wavelet_holder(w))), 0.5, 0.1)
    path = fbm(2**14, 0.6, rng=np.random.default_rng(2))
    res = wavelet_leader_analysis(path, q=np.linspace(-2, 3, 11))
    check("wavelet-leader c1 on fBm H=0.6", res.c1, 0.6, 0.1)
    check("wavelet-leader c2 on fBm (monofractal)", res.c2, 0.0, 0.05)

    print("all checks passed" if failures == 0 else f"{failures} check(s) FAILED")
    args._outcome.update(failures=failures)
    return 0 if failures == 0 else 1


def _parse_chaos(spec: str):
    """Parse a ``--chaos`` SPEC string into a :class:`ChaosSpec`."""
    from .exceptions import ValidationError
    from .testing.chaos import ChaosSpec

    fields = {
        "kill": ("kill_rate", float),
        "hang": ("hang_rate", float),
        "raise": ("raise_rate", float),
        "hang-seconds": ("hang_seconds", float),
        "seed": ("seed", int),
        "max-failures": ("max_failures_per_unit", int),
    }
    kwargs = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or key not in fields:
            raise ValidationError(
                f"bad chaos spec item {item!r}; expected key=value with "
                f"key one of {sorted(fields)}")
        name, convert = fields[key]
        try:
            kwargs[name] = convert(value.strip())
        except ValueError:
            raise ValidationError(
                f"bad chaos spec value in {item!r}") from None
    return ChaosSpec(**kwargs)


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run a two-cell campaign (aging vs healthy control) and report."""
    from .analysis import (
        ExperimentSpec,
        cells_payload,
        detector_grid,
        execute_campaign,
        results_table,
        save_results,
    )
    from .exceptions import ExecutionError, ReproError, ValidationError
    from .report import render_table

    try:
        specs = [
            ExperimentSpec(
                name=f"{args.scenario}-aging", scenario=args.scenario,
                profile=args.profile, n_runs=args.runs,
                base_seed=args.base_seed,
                max_run_seconds=args.max_seconds, engine=args.engine,
                holder_engine=args.holder_engine,
            ),
            ExperimentSpec(
                name=f"{args.scenario}-healthy", scenario=args.scenario,
                profile=args.profile, n_runs=args.runs,
                base_seed=args.base_seed + 1000, fault_factor=0.0,
                max_run_seconds=min(args.max_seconds, 15_000.0),
                engine=args.engine,
                holder_engine=args.holder_engine,
            ),
        ]
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.detectors:
        names = [n.strip() for n in args.detectors.split(",") if n.strip()]
        try:
            specs = detector_grid(specs, names)
        except ValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    n_units = len(specs) * args.runs
    from .perf.pool import resolve_workers

    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    chaos = None
    if args.chaos:
        try:
            chaos = _parse_chaos(args.chaos)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        scheduled = chaos.scheduled_faults(n_units)
        print(f"chaos: sabotaging {len(scheduled)} of {n_units} "
              f"unit(s) ({args.chaos})")

    workers = resolve_workers(args.workers)

    # Control plane (all observation, never touches campaign payloads):
    # flight recorder, resource sampler / self-watch, HTTP status
    # surface, timeline recorder.
    recorder = sampler = board = server = timeline = None
    if args.flight_record:
        from .obs.ops import FlightRecorder, install_flight_recorder

        recorder = install_flight_recorder(
            FlightRecorder(path=args.flight_record))
        print(f"flight recorder armed -> {args.flight_record}")
    if args.status_port is not None or args.self_watch or args.timeline:
        from .obs.resources import ResourceSampler
        from .perf.pool import pool_worker_pids

        sampler = ResourceSampler(worker_pids=pool_worker_pids,
                                  self_watch=args.self_watch)
        sampler.start()
    if args.status_port is not None or args.timeline:
        from .obs.statusd import StatusBoard

        board = StatusBoard(kind="campaign")
    if args.timeline:
        from .obs.timeline import TimelineRecorder

        timeline = TimelineRecorder(
            args.timeline, interval=args.timeline_every,
            board=board, resources=sampler)
        timeline.start()
        print(f"timeline: recording -> {args.timeline} "
              f"(every {args.timeline_every:g}s)")
    if args.status_port is not None:
        from .obs.statusd import StatusServer

        server = StatusServer(port=args.status_port, board=board,
                              resources=sampler, timeline=timeline)
        port = server.start()
        print(f"status: serving http://127.0.0.1:{port}/status "
              f"(/metrics, /healthz, /timeline)", flush=True)

    suffix = f" across {workers} workers" if workers > 1 else ""
    print(f"running {n_units} simulations "
          f"({args.scenario}/{args.profile}){suffix}...")
    try:
        try:
            outcome = execute_campaign(
                specs, workers=workers, timeout=args.timeout,
                retries=args.retries, journal=args.journal,
                resume=args.resume, chaos=chaos,
                allow_partial=args.allow_partial, status=board,
                timeline=timeline,
            )
        except ExecutionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            args._outcome.update(campaign_status="failed")
            if timeline is not None:
                timeline.finalize("failed")
            return 1
        results = outcome.results
        if outcome.resumed_units:
            when = outcome.resumed_last_progress_at
            stamp = ("" if when is None
                     else " (last progress at "
                     + _format_wall_time(when) + ")")
            print(f"resumed {outcome.resumed_units} unit(s) from "
                  f"{args.journal}{stamp}; "
                  f"executed {outcome.executed_units} fresh")
        print(render_table(
            ["cell", "runs", "crashed", "detected", "missed",
             "median_lead_s", "false_alarms"],
            results_table(results), title="Campaign results",
        ))
        if args.out:
            save_results(results, args.out)
            print(f"results -> {args.out}")
        # Per-run records ride along in the manifest so detection-quality
        # dashboards can be rebuilt from telemetry archives alone.  So does
        # the campaign's resilience outcome (status + any missing units).
        args._outcome.update(
            cells=cells_payload(results),
            campaign_status=outcome.status,
            missing_units=[
                {"cell": u.cell, "run_index": u.run_index, "error": u.error}
                for u in outcome.missing
            ],
        )
        scoreboard = None
        if args.detectors or args.scoreboard:
            from .analysis import (
                build_scoreboard,
                publish_scoreboard,
                save_scoreboard,
                scoreboard_table,
            )

            scoreboard = build_scoreboard(args._outcome["cells"])
            publish_scoreboard(scoreboard)
            print()
            print(render_table(
                _SCOREBOARD_HEADERS, scoreboard_table(scoreboard),
                title="Detector tournament",
            ))
            if args.scoreboard:
                save_scoreboard(scoreboard, args.scoreboard)
                print(f"scoreboard -> {args.scoreboard}")
        if sampler is not None and args.self_watch:
            watch = (sampler.latest() or {}).get("self_watch") or {}
            state = watch.get("state", "unknown")
            print(f"self-watch: parent state {state} "
                  f"({watch.get('n_samples', 0)} RSS samples, "
                  f"{watch.get('alerts_fired', 0)} alert(s))")
            args._outcome.update(self_watch=watch)
        tl_records = None
        if timeline is not None:
            tl_path = timeline.finalize(outcome.status)
            tl_records = timeline.records()
            if tl_path:
                print(f"timeline -> {tl_path} ({timeline.n_frames} frames, "
                      f"{timeline.n_annotations} annotations)")
        costs = None
        if args.costs:
            from .obs import session as obs_session
            from .obs.atomic import atomic_write_json
            from .obs.costs import build_cost_profile, cost_table

            sess = obs_session.current_session()
            snapshot = (sess.profiler.snapshot()
                        if sess.profiler is not None else None)
            try:
                costs = build_cost_profile(sess.spans.to_list(),
                                           profile=snapshot)
            except ValidationError as exc:
                print(f"costs: {exc}", file=sys.stderr)
            else:
                atomic_write_json(args.costs, costs)
                print(f"cost profile -> {args.costs}")
                print()
                print(render_table(
                    ["path", "phase", "calls", "self_s", "share"],
                    cost_table(costs), title="Top cost centers",
                ))
                args._outcome.update(costs_file=args.costs)
        if args.dashboard:
            from .obs.dashboard import render_campaign_dashboard, write_dashboard

            path = write_dashboard(
                render_campaign_dashboard(cells=args._outcome["cells"],
                                          scoreboard=scoreboard,
                                          timeline=tl_records, costs=costs),
                args.dashboard,
            )
            print(f"dashboard -> {path}")
        if not outcome.complete:
            print(f"campaign INCOMPLETE: {len(outcome.missing)} unit(s) "
                  f"missing in cell(s) {', '.join(outcome.missing_cells)}"
                  + (f"; resume with --journal {args.journal} --resume"
                     if args.journal else ""),
                  file=sys.stderr)
            return 1
        return 0
    finally:
        if server is not None:
            server.stop()
        if timeline is not None:
            timeline.finalize("error")  # no-op when already finalized
        if sampler is not None:
            sampler.stop()
        if recorder is not None:
            from .obs.ops import uninstall_flight_recorder

            uninstall_flight_recorder()


# Column order matches repro.analysis.scoreboard.scoreboard_table rows.
_SCOREBOARD_HEADERS = [
    "detector", "cells", "runs", "crashed", "detected", "rate",
    "premature", "missed", "lead_p50_s", "lead_p90_s", "fa_per_h", "auc",
]


def cmd_scoreboard(args: argparse.Namespace) -> int:
    """Rebuild the detector scoreboard from saved campaign artifacts."""
    import os

    from .analysis import (
        build_scoreboard,
        cells_payload,
        load_results,
        publish_scoreboard,
        save_scoreboard,
        scoreboard_table,
    )
    from .exceptions import ReproError
    from .report import render_table

    try:
        if os.path.isfile(args.path):
            cells = cells_payload(load_results(args.path))
            source = f"results file {args.path}"
        else:
            from .obs import load_manifests
            from .obs.dashboard import campaign_cells_from_manifests

            manifests = load_manifests(args.path)
            cells = campaign_cells_from_manifests(manifests)
            source = (f"{len(manifests)} manifest(s) under {args.path}")
        scoreboard = build_scoreboard(cells)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    publish_scoreboard(scoreboard)
    print(render_table(
        _SCOREBOARD_HEADERS, scoreboard_table(scoreboard),
        title=f"Detector tournament — {source}",
    ))
    if args.out:
        save_scoreboard(scoreboard, args.out)
        print(f"scoreboard -> {args.out}")
    if args.prom:
        from .obs.atomic import atomic_write_text
        from .obs.export import scoreboard_to_prometheus

        atomic_write_text(args.prom, scoreboard_to_prometheus(scoreboard))
        print(f"openmetrics -> {args.prom}")
    if args.dashboard:
        from .obs.dashboard import render_campaign_dashboard, write_dashboard

        path = write_dashboard(
            render_campaign_dashboard(cells=cells, scoreboard=scoreboard),
            args.dashboard,
        )
        print(f"dashboard -> {path}")
    args._outcome.update(
        n_cells=scoreboard["n_cells"],
        detectors=sorted(scoreboard["detectors"]),
        scoreboard_file=args.out,
    )
    return 0


def _format_wall_time(epoch_seconds: float) -> str:
    """Epoch seconds -> local ``YYYY-mm-dd HH:MM:SS`` for log lines."""
    import time as _time

    return _time.strftime("%Y-%m-%d %H:%M:%S",
                          _time.localtime(epoch_seconds))


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Summarise (table) or export (json/csv/prom) run manifests."""
    import json as _json

    from .exceptions import TraceError
    from .obs import (
        load_manifests,
        manifests_to_csv,
        manifests_to_json,
        manifests_to_prometheus,
    )
    from .report import render_kv, render_table

    try:
        manifests = load_manifests(args.path)
    except (TraceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    fmt = getattr(args, "format", "table")
    if fmt == "json":
        print(_json.dumps(manifests_to_json(manifests), indent=2,
                          default=str))
        return 0
    if fmt == "csv":
        sys.stdout.write(manifests_to_csv(manifests))
        return 0
    if fmt == "prom":
        sys.stdout.write(manifests_to_prometheus(manifests))
        return 0

    rows = []
    for i, m in enumerate(manifests):
        n_alarms = len([e for e in m.events
                        if e.get("kind") in ("alarm", "online_alarm")])
        n_crashes = len([e for e in m.events if e.get("kind") == "crash"])
        rows.append([
            i, m.command, "-" if m.seed is None else m.seed,
            float("nan") if m.wall_seconds is None else m.wall_seconds,
            len(m.spans), len(m.metrics), len(m.events),
            n_alarms, n_crashes,
        ])
    print(render_table(
        ["run", "command", "seed", "wall_s", "spans", "metrics", "events",
         "alarms", "crashes"],
        rows, title=f"Telemetry summary ({len(manifests)} run(s))",
    ))

    for i, m in enumerate(manifests):
        stages = m.stage_durations()
        if stages:
            print()
            print(render_table(
                ["stage", "seconds"],
                [[path, seconds] for path, seconds in stages.items()],
                title=f"run {i} ({m.command}): stage durations",
            ))
        if getattr(args, "spans", False) and m.spans:
            from .obs.export import span_tree_rows

            print()
            print(render_table(
                ["span", "seconds", "status", "worker"],
                span_tree_rows(m.spans),
                title=f"run {i} ({m.command}): span tree",
            ))
        if args.metrics and m.metrics:
            flat = {}
            for name, snap in m.metrics.items():
                for key, value in snap.items():
                    if key != "type" and value is not None:
                        flat[f"{name}.{key}"] = value
            print()
            print(render_kv(flat, title=f"run {i} ({m.command}): metrics"))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the hot-path suite, archive a BENCH_*.json, police regressions."""
    from .obs import bench
    from .report import render_table

    if args.list_cases:
        print(render_table(
            ["name", "group", "description"],
            [[c.name, c.group, c.description] for c in bench.SUITE],
            title="Benchmark suite",
        ))
        return 0
    if args.list:
        records = bench.list_bench_files(args.out)
        if not records:
            print(f"no {bench.BENCH_PREFIX}*.json trajectory files "
                  f"under {args.out}")
            return 0
        case_names = sorted({name for r in records for name in r["cases"]})
        rows = []
        for r in records:
            rows.append(
                [r["created_at"][:10], r["git_sha"],
                 "quick" if r["quick"] else "full"]
                + [r["cases"].get(name, float("nan")) for name in case_names])
        print(render_table(
            ["date", "sha", "mode"] + [f"{n}_s" for n in case_names],
            rows,
            title=f"Benchmark trajectories under {args.out} "
                  f"({len(records)} file(s), best wall seconds)",
        ))
        newest = max(records, key=lambda r: r["created_at"])
        stale = sorted({c.name for c in bench.SUITE} - set(newest["cases"]))
        if stale:
            print(f"warning: newest trajectory "
                  f"({newest['created_at'][:10]}, {newest['git_sha']}) "
                  f"predates the current case set — missing "
                  f"{', '.join(stale)}; rerun `python -m repro bench` to "
                  f"refresh the baseline")
        return 0

    select = args.select.split(",") if args.select else None
    mode = "quick" if args.quick else "full"
    print(f"running {mode} benchmark suite "
          f"({len(bench.select_cases(select))} case(s))...")

    def progress(name: str, record: dict) -> None:
        throughput = record["samples_per_sec"]
        rate = "-" if throughput is None else f"{throughput:,.0f}"
        print(f"  {name:<20s} {record['wall_best'] * 1e3:9.2f} ms  "
              f"{rate:>12s} samples/s")

    payload = bench.run_suite(
        quick=args.quick, repeats=args.repeats, select=select,
        track_memory=not args.no_memory, progress=progress,
    )
    path = bench.write_bench_file(payload, args.out)
    print(f"trajectory -> {path}")
    args._outcome.update(bench_file=path,
                         cases=sorted(payload["results"]))

    if args.no_compare:
        return 0
    baseline_root = args.baseline if args.baseline is not None else args.out
    baseline_path = bench.find_baseline(
        baseline_root, quick=args.quick, exclude=path)
    if baseline_path is None:
        print("no baseline to compare against (first trajectory file); "
              "future runs will compare against this one")
        return 0
    comparison = bench.compare_runs(
        bench.read_bench_file(baseline_path), payload,
        threshold=args.threshold, normalize=not args.no_normalize,
    )
    print()
    print(bench.render_comparison(comparison, baseline_path=baseline_path))
    args._outcome.update(baseline=baseline_path,
                         regressions=comparison["regressions"])
    return 1 if comparison["regressions"] else 0


def cmd_watch(args: argparse.Namespace) -> int:
    """Live watch: online monitor + alert rules over a stream of samples."""
    import contextlib

    from .core.online import OnlineAgingMonitor
    from .exceptions import ReproError
    from .obs.alerts import AlertEngine, load_rules
    from .obs.atomic import atomic_write
    from .obs.live import EventStreamWriter, LiveWatcher

    monitor = OnlineAgingMonitor(
        chunk_size=args.chunk_size,
        history=args.history,
        indicator_window=args.indicator_window,
        n_calibration=args.calibration,
        holder_engine=args.engine,
    )
    engine = None
    if args.alerts:
        try:
            rules = load_rules(args.alerts)
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        engine = AlertEngine(rules)
        print(f"loaded {len(rules)} alert rule(s) from {args.alerts}")

    board = server = timeline = tl_sampler = None
    if args.status_port is not None or args.timeline is not None:
        from .obs.statusd import StatusBoard

        board = StatusBoard(kind="watch")
        board.begin(total_units=0, counter=args.counter)
    if args.timeline is not None:
        from .obs.resources import ResourceSampler
        from .obs.timeline import TimelineRecorder

        tl_sampler = ResourceSampler()
        tl_sampler.start()
        timeline = TimelineRecorder(
            args.timeline, interval=args.timeline_every,
            board=board, resources=tl_sampler)
        timeline.start()
        print(f"timeline: recording -> {args.timeline} "
              f"(every {args.timeline_every:g}s)")
    if args.status_port is not None:
        from .obs.statusd import StatusServer

        server = StatusServer(port=args.status_port, board=board,
                              timeline=timeline)
        port = server.start()
        print(f"status: serving http://127.0.0.1:{port}/status "
              f"(/metrics, /healthz, /timeline)", flush=True)

    def status_line(event: dict) -> None:
        value = event.get("value")
        shown = "-" if value is None else f"{value:,.0f}"
        print(f"  [t={event['t']:>8,.0f}s] state={event['state']:<11s} "
              f"samples={event['n_samples']:<7d} "
              f"indicators={event['n_indicators']:<4d} "
              f"alerts={event['alerts_fired']:<3d} {args.counter}={shown}")

    def on_status(event: dict) -> None:
        if board is not None:
            board.update(
                watch_time=event["t"], watch_state=event["state"],
                n_samples=event["n_samples"],
                n_indicators=event["n_indicators"],
                alerts_fired=event["alerts_fired"],
            )
        if not args.quiet:
            status_line(event)

    keep_events = bool(args.dashboard)
    with contextlib.ExitStack() as stack:
        if server is not None:
            stack.callback(server.stop)
        if timeline is not None:
            # Safety net for early error returns: finalize() is
            # idempotent, so the normal path's finalize below wins.
            stack.callback(lambda: timeline.finalize("error"))
            stack.callback(tl_sampler.stop)
        # The event stream is written atomically: it lands at --events in
        # one rename when the watch session ends, so a crash mid-watch
        # never leaves a truncated JSONL behind.
        handle = (stack.enter_context(atomic_write(args.events))
                  if args.events else None)
        writer = EventStreamWriter(handle, keep=keep_events or handle is None)
        watcher = LiveWatcher(
            monitor, writer=writer, engine=engine, counter=args.counter,
            status_every=args.status_every, sample_every=args.sample_every,
            on_status=(None if args.quiet and board is None else on_status),
        )
        if args.trace is not None:
            from .trace import read_bundle

            print(f"replaying {args.trace} ({args.counter})...")
            try:
                end = watcher.replay(read_bundle(args.trace))
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        else:
            from .memsim.scenarios import build_scenario

            scenario = args.scenario or "stress"
            machine = build_scenario(
                scenario, seed=args.seed, profile=args.profile,
                max_run_seconds=args.max_seconds,
                fault_factor=args.fault_factor,
            )
            print(f"watching {scenario}/{args.profile} seed={args.seed} "
                  f"(budget {args.max_seconds:.0f}s)...")
            watcher.attach(machine)
            machine.run()
            end = watcher.finalize()

        state = end["state"]
        if board is not None:
            board.finish(state, alarm_time=end["alarm_time"],
                         crash_time=end["crash_time"])
        if timeline is not None:
            timeline.finalize("ok")
            print(f"timeline -> {args.timeline} "
                  f"({timeline.n_frames} frames, "
                  f"{timeline.n_annotations} annotations)")
    if end["crash_time"] is not None:
        crash = (f"crashed at t={end['crash_time']:,.0f}s "
                 f"({end.get('crash_reason') or 'unknown'})")
    else:
        crash = "no crash"
    if end["alarm_time"] is not None:
        alarm = f"ALARM at t={end['alarm_time']:,.0f}s"
        if end["lead_time"] is not None:
            alarm += f" (lead {end['lead_time']:,.0f}s)"
    else:
        alarm = "no alarm"
    print(f"watch finished: {alarm}; {crash}; detector state {state}; "
          f"{end['n_samples']} samples, {end['n_indicators']} indicator "
          f"points, {sum(end['alerts'].values())} alert firing(s)")
    if args.events:
        print(f"events -> {args.events} ({writer.n_events} events)")
    if args.dashboard:
        from .obs.dashboard import render_run_dashboard, write_dashboard

        path = write_dashboard(
            render_run_dashboard(writer.events), args.dashboard)
        print(f"dashboard -> {path}")
    args._outcome.update(
        source="replay" if args.trace else (args.scenario or "stress"),
        state=state,
        alarm_time=end["alarm_time"],
        crash_time=end["crash_time"],
        lead_time=end["lead_time"],
        n_samples=end["n_samples"],
        alerts=end["alerts"],
        events_file=args.events,
    )
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    """Render a run or campaign dashboard from archived artifacts."""
    import os

    from .exceptions import ReproError
    from .obs import load_manifests
    from .obs.dashboard import (
        render_campaign_dashboard,
        render_run_dashboard,
        write_dashboard,
    )
    from .obs.live import read_events

    try:
        if os.path.isfile(args.path):
            events = read_events(args.path)
            html = render_run_dashboard(events, title=args.title)
            flavor = f"run dashboard ({len(events)} events)"
        else:
            manifests = load_manifests(args.path)
            html = render_campaign_dashboard(manifests, title=args.title)
            flavor = f"campaign dashboard ({len(manifests)} manifest(s))"
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    path = write_dashboard(html, args.out)
    print(f"{flavor} -> {path}")
    args._outcome.update(dashboard=path)
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    """Summarise, slice or export a saved campaign timeline artifact."""
    import json as _json

    from .exceptions import ReproError
    from .obs.timeline import (
        read_timeline,
        slice_timeline,
        timeline_summary,
        timeline_to_csv,
    )
    from .report import render_kv

    try:
        records = read_timeline(args.path)
        summary = timeline_summary(records)  # validates the stream
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    view = records
    if args.since is not None or args.until is not None:
        view = slice_timeline(records, since=args.since, until=args.until)
        window = (f"[{args.since if args.since is not None else 0:g}s, "
                  f"{args.until if args.until is not None else 'end'}]")
        n_frames = sum(1 for r in view if r.get("kind") == "frame")
        print(f"slice {window}: {n_frames} of {summary['n_frames']} "
              f"frame(s) selected")

    costs = None
    if args.costs:
        try:
            with open(args.costs, "r", encoding="utf-8") as handle:
                costs = _json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: bad costs profile {args.costs}: {exc}",
                  file=sys.stderr)
            return 2

    flat = {}
    for key, value in summary.items():
        if key == "annotations_by_event":
            for event, count in sorted(value.items()):
                flat[f"annotations.{event}"] = count
        elif key == "final_progress":
            for pkey, pvalue in (value or {}).items():
                if pvalue is not None:
                    flat[f"progress.{pkey}"] = pvalue
        elif value is not None:
            flat[key] = value
    print(render_kv(flat, title=f"Timeline {args.path}"))

    if args.slice_out:
        from .obs.atomic import atomic_write

        with atomic_write(args.slice_out) as handle:
            for record in view:
                handle.write(_json.dumps(record) + "\n")
        print(f"slice -> {args.slice_out} ({len(view)} records)")
    if args.csv:
        from .obs.atomic import atomic_write_text

        atomic_write_text(args.csv, timeline_to_csv(view))
        print(f"csv -> {args.csv}")
    if args.prom:
        from .obs.atomic import atomic_write_text
        from .obs.export import timeline_to_prometheus

        atomic_write_text(args.prom, timeline_to_prometheus(view))
        print(f"openmetrics -> {args.prom}")
    if args.dashboard:
        from .obs.dashboard import render_timeline_dashboard, write_dashboard

        path = write_dashboard(
            render_timeline_dashboard(view, costs=costs, title=args.title),
            args.dashboard)
        print(f"dashboard -> {path}")
    args._outcome.update(
        n_frames=summary["n_frames"],
        n_annotations=summary["n_annotations"],
        timeline_status=summary["status"],
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Besides dispatching, this is where the telemetry envelope lives:
    ``--log-level`` configures the structured logger, ``--telemetry-out``
    opens a fresh telemetry session around the command (``--perf-profile``
    attaches the hot-path profiler to it) and freezes it into a run
    manifest afterwards.  A command that *raises* still gets its manifest
    — with ``outcome.status = "error"`` and the exception recorded — a
    misbehaving run is exactly the one worth inspecting; the exception
    then propagates unchanged.
    """
    from . import obs

    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": cmd_simulate,
        "analyze": cmd_analyze,
        "validate": cmd_validate,
        "campaign": cmd_campaign,
        "scoreboard": cmd_scoreboard,
        "telemetry": cmd_telemetry,
        "bench": cmd_bench,
        "watch": cmd_watch,
        "dashboard": cmd_dashboard,
        "timeline": cmd_timeline,
    }
    args._outcome = {}
    if getattr(args, "log_level", None):
        obs.configure_logging(args.log_level)
    telemetry_out = getattr(args, "telemetry_out", None)
    profiling = bool(getattr(args, "perf_profile", False)
                     or getattr(args, "perf_memory", False))
    # A live /status surface needs a live session to scrape, so
    # --status-port implies telemetry even without a manifest directory.
    # So do campaign/watch --timeline (frames read live counters) and
    # campaign --costs (folds the live span tree); the artifact-reading
    # `timeline` subcommand does not.
    wants_history = (args.command in ("campaign", "watch")
                     and (getattr(args, "timeline", None) is not None
                          or getattr(args, "costs", None) is not None))
    session = (
        obs.enable_telemetry(
            profile=profiling,
            profile_memory=bool(getattr(args, "perf_memory", False)))
        if (telemetry_out or profiling
            or getattr(args, "status_port", None) is not None
            or wants_history) else None
    )
    code: Optional[int] = None
    error: Optional[BaseException] = None
    try:
        with obs.span(args.command):
            code = handlers[args.command](args)
        return code
    except BaseException as exc:
        error = exc
        raise
    finally:
        if session is not None:
            args._outcome["exit_code"] = code
            args._outcome["status"] = "ok" if error is None else "error"
            if error is not None:
                args._outcome["error"] = {
                    "type": type(error).__name__,
                    "message": str(error),
                }
            if telemetry_out:
                seed = getattr(args, "seed", getattr(args, "base_seed", None))
                config = {
                    k: v for k, v in vars(args).items()
                    if not k.startswith("_")
                    and k not in ("command", "telemetry_out")
                    and v is not None
                }
                manifest = obs.build_manifest(
                    session, command=args.command, config=config, seed=seed,
                    outcome=args._outcome,
                )
                path = obs.write_manifest(manifest, telemetry_out)
                print(f"telemetry -> {path}")
            elif session.profiler is not None and len(session.profiler):
                print()
                print(_render_profile(session.profiler.snapshot()))
            obs.disable_telemetry()
        if getattr(args, "log_level", None):
            obs.reset_logging()


def _render_profile(snapshot: dict) -> str:
    """Hot-path profile as a report table (for profiled runs w/o manifest)."""
    from .report import render_table

    rows = []
    for name, stats in snapshot.get("hotpaths", {}).items():
        mem = stats.get("mem_peak_bytes")
        rows.append([
            name, stats["calls"],
            stats["wall_total"], stats["wall_mean"] or 0.0,
            stats["cpu_total"],
            "-" if mem is None else f"{mem / 1e6:.1f}",
        ])
    title = "Hot-path profile"
    peak = snapshot.get("peak_rss_bytes")
    if peak is not None:
        title += f" (process peak RSS {peak / 1e6:.0f} MB)"
    return render_table(
        ["hot path", "calls", "wall_s", "wall_mean_s", "cpu_s", "mem_peak_MB"],
        rows, title=title,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
