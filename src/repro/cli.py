"""Command-line interface: ``python -m repro <command>``.

Four subcommands covering the library's main workflows:

``simulate``
    Run a stress-to-crash simulation and write the counter traces to a
    CSV file::

        python -m repro simulate --profile nt4 --seed 7 --out run.csv

``analyze``
    Run the aging analysis on a trace CSV (produced by ``simulate`` or
    hand-converted from a real collector) and print the warning
    report::

        python -m repro analyze run.csv --counter AvailableBytes

``validate``
    Quick self-check: synthesise ground-truth signals and verify the
    estimators recover their exponents (a smoke-test version of the T5
    benchmark)::

        python -m repro validate

``campaign``
    Run a small detection campaign (aging cell + healthy control) on a
    named scenario and print/persist the aggregate table::

        python -m repro campaign --scenario webserver --runs 3 --out results.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Software aging and multifractality of memory resources "
                    "(DSN 2003 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run a stress-to-crash simulation")
    sim.add_argument("--profile", choices=("nt4", "w2k"), default="nt4")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--max-seconds", type=float, default=80_000.0)
    sim.add_argument("--fault-factor", type=float, default=1.0,
                     help="scale every aging-fault intensity")
    sim.add_argument("--out", required=True, help="output CSV path")

    ana = sub.add_parser("analyze", help="aging analysis of a trace CSV")
    ana.add_argument("trace", help="CSV produced by `repro simulate`")
    ana.add_argument("--counter", default="AvailableBytes")
    ana.add_argument("--indicator", choices=("mean", "variance"), default="mean")
    ana.add_argument("--scheme", choices=("cusum", "ewma", "threshold"),
                     default="cusum")

    sub.add_parser("validate", help="estimator self-check on ground truth")

    camp = sub.add_parser("campaign",
                          help="aging + healthy-control detection campaign")
    camp.add_argument("--scenario", default="stress")
    camp.add_argument("--profile", choices=("nt4", "w2k"), default="nt4")
    camp.add_argument("--runs", type=int, default=3)
    camp.add_argument("--base-seed", type=int, default=1)
    camp.add_argument("--max-seconds", type=float, default=60_000.0)
    camp.add_argument("--out", default=None, help="optional JSON output path")
    return parser


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run one machine and archive its traces."""
    from .memsim import Machine, MachineConfig
    from .trace import write_csv

    ctor = MachineConfig.nt4 if args.profile == "nt4" else MachineConfig.w2k
    base = ctor(seed=args.seed, max_run_seconds=args.max_seconds)
    if args.fault_factor != 1.0:
        base = ctor(seed=args.seed, max_run_seconds=args.max_seconds,
                    faults=base.faults.scaled(args.fault_factor))
    print(f"simulating {args.profile} seed={args.seed} "
          f"(budget {args.max_seconds:.0f}s)...")
    result = Machine(base).run()
    write_csv(result.bundle, args.out)
    if result.crashed:
        print(f"crashed at t={result.crash_time:.0f}s ({result.crash_reason}); "
              f"traces -> {args.out}")
    else:
        print(f"survived {result.duration:.0f}s; traces -> {args.out}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Analyse one counter of a trace file."""
    from .core import analyze_counter
    from .core.detectors import DetectorConfig
    from .trace import read_csv

    bundle = read_csv(args.trace)
    if args.counter not in bundle:
        print(f"error: no counter {args.counter!r} in {args.trace}; "
              f"available: {bundle.names}", file=sys.stderr)
        return 2
    analysis = analyze_counter(
        bundle[args.counter],
        indicator=args.indicator,
        detector_config=DetectorConfig(scheme=args.scheme),
    )
    alarm = analysis.alarm
    print(f"counter      : {args.counter}")
    print(f"indicator    : windowed Hölder {analysis.indicator.statistic}")
    print(f"scheme       : {alarm.scheme}")
    print(f"baseline     : {alarm.baseline_mean:.4g} ± {alarm.baseline_std:.4g}")
    if alarm.fired:
        print(f"WARNING at   : {alarm.alarm_time:.0f}s")
    else:
        print("no warning fired")
    crash_time = bundle.metadata.get("crash_time")
    if crash_time is not None:
        print(f"crash (truth): {float(crash_time):.0f}s")
        if alarm.fired:
            print(f"lead time    : {float(crash_time) - alarm.alarm_time:.0f}s")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Estimator smoke check against closed-form exponents."""
    from .fractal import dfa, wavelet_leader_analysis
    from .generators import fbm, fgn, weierstrass
    from .core import wavelet_holder

    failures = 0

    def check(label: str, got: float, want: float, tol: float) -> None:
        nonlocal failures
        ok = abs(got - want) <= tol
        status = "ok " if ok else "FAIL"
        print(f"  [{status}] {label}: got {got:+.3f}, want {want:+.3f} ± {tol}")
        if not ok:
            failures += 1

    print("validating estimators on ground-truth signals...")
    for h_true in (0.3, 0.7):
        x = fgn(2**13, h_true, rng=np.random.default_rng(1))
        check(f"DFA on fGn H={h_true}", dfa(x).alpha, h_true, 0.1)
    w = weierstrass(2**12, 0.5)
    check("wavelet Hölder on Weierstrass h=0.5",
          float(np.mean(wavelet_holder(w))), 0.5, 0.1)
    path = fbm(2**14, 0.6, rng=np.random.default_rng(2))
    res = wavelet_leader_analysis(path, q=np.linspace(-2, 3, 11))
    check("wavelet-leader c1 on fBm H=0.6", res.c1, 0.6, 0.1)
    check("wavelet-leader c2 on fBm (monofractal)", res.c2, 0.0, 0.05)

    print("all checks passed" if failures == 0 else f"{failures} check(s) FAILED")
    return 0 if failures == 0 else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run a two-cell campaign (aging vs healthy control) and report."""
    from .analysis import ExperimentSpec, results_table, run_campaign, save_results
    from .report import render_table

    specs = [
        ExperimentSpec(
            name=f"{args.scenario}-aging", scenario=args.scenario,
            profile=args.profile, n_runs=args.runs, base_seed=args.base_seed,
            max_run_seconds=args.max_seconds,
        ),
        ExperimentSpec(
            name=f"{args.scenario}-healthy", scenario=args.scenario,
            profile=args.profile, n_runs=args.runs,
            base_seed=args.base_seed + 1000, fault_factor=0.0,
            max_run_seconds=min(args.max_seconds, 15_000.0),
        ),
    ]
    print(f"running {2 * args.runs} simulations "
          f"({args.scenario}/{args.profile})...")
    results = run_campaign(specs)
    print(render_table(
        ["cell", "runs", "crashed", "detected", "missed",
         "median_lead_s", "false_alarms"],
        results_table(results), title="Campaign results",
    ))
    if args.out:
        save_results(results, args.out)
        print(f"results -> {args.out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": cmd_simulate,
        "analyze": cmd_analyze,
        "validate": cmd_validate,
        "campaign": cmd_campaign,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
