"""Change detection used on Hölder-exponent summary series.

Two online detectors (CUSUM, EWMA) raise alarms as soon as a monitored
statistic drifts from its calibrated baseline — these power the paper-core
"fractal collapse" warnings.  One offline locator finds the single most
likely mean shift in a completed series, used when scoring where the
collapse happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .._validation import (
    as_1d_float_array,
    check_nonnegative,
    check_positive,
    check_positive_int,
)
from ..exceptions import AnalysisError


@dataclass
class CusumDetector:
    """One-sided (upward) tabular CUSUM detector.

    Monitors ``x_t`` for an upward mean shift relative to a baseline mean
    ``mu0`` and standard deviation ``sigma0``:

    ``g_t = max(0, g_{t-1} + (x_t - mu0)/sigma0 - k)``; alarm when
    ``g_t > h``.

    Parameters
    ----------
    k:
        Reference value (allowance) in baseline standard deviations; half
        the shift magnitude one wants to detect quickly.  Default 0.5.
    h:
        Decision threshold in baseline standard deviations.  Default 5.0,
        the classical choice giving a long in-control run length.
    """

    k: float = 0.5
    h: float = 5.0
    _mu0: Optional[float] = field(default=None, repr=False)
    _sigma0: Optional[float] = field(default=None, repr=False)
    _g: float = field(default=0.0, repr=False)
    _alarmed: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        check_nonnegative(self.k, name="k")
        check_positive(self.h, name="h")

    def calibrate(self, baseline) -> None:
        """Set the in-control mean/std from a baseline sample."""
        x = as_1d_float_array(baseline, name="baseline", min_length=4)
        sigma = float(np.std(x, ddof=1))
        if sigma == 0:
            raise AnalysisError("baseline is constant; CUSUM cannot be calibrated")
        self.calibrate_from_moments(float(np.mean(x)), sigma)

    def calibrate_from_moments(self, mean: float, std: float) -> None:
        """Set the in-control mean/std directly."""
        if std <= 0:
            raise AnalysisError(f"baseline std must be positive, got {std}")
        self._mu0 = float(mean)
        self._sigma0 = float(std)
        self.reset()

    def reset(self) -> None:
        """Clear the accumulated statistic and the alarm latch."""
        self._g = 0.0
        self._alarmed = False

    @property
    def statistic(self) -> float:
        """Current value of the CUSUM statistic g_t."""
        return self._g

    @property
    def alarmed(self) -> bool:
        """True once the threshold has been crossed (latched)."""
        return self._alarmed

    def update(self, x: float) -> bool:
        """Feed one observation; return True if the alarm is (now) raised."""
        if self._mu0 is None or self._sigma0 is None:
            raise AnalysisError("CUSUM used before calibrate()")
        z = (float(x) - self._mu0) / self._sigma0
        self._g = max(0.0, self._g + z - self.k)
        if self._g > self.h:
            self._alarmed = True
        return self._alarmed

    def run(self, times, values) -> Optional[float]:
        """Stream a whole series; return the first alarm time, or None."""
        t = as_1d_float_array(times, name="times", min_length=1)
        x = as_1d_float_array(values, name="values", min_length=1)
        if t.size != x.size:
            raise AnalysisError("times and values must have equal length")
        for ti, xi in zip(t, x):
            if self.update(xi):
                return float(ti)
        return None


@dataclass
class EwmaDetector:
    """Exponentially weighted moving average control chart (upward).

    ``z_t = (1-lam) z_{t-1} + lam x_t``; alarm when ``z_t`` exceeds
    ``mu0 + L * sigma_z``, with the steady-state EWMA standard deviation
    ``sigma_z = sigma0 * sqrt(lam / (2 - lam))``.
    """

    lam: float = 0.2
    L: float = 3.0
    _mu0: Optional[float] = field(default=None, repr=False)
    _limit: Optional[float] = field(default=None, repr=False)
    _z: Optional[float] = field(default=None, repr=False)
    _alarmed: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not (0.0 < self.lam <= 1.0):
            raise AnalysisError(f"lam must lie in (0, 1], got {self.lam}")
        check_positive(self.L, name="L")

    def calibrate(self, baseline) -> None:
        """Set the in-control mean and control limit from a baseline sample."""
        x = as_1d_float_array(baseline, name="baseline", min_length=4)
        sigma = float(np.std(x, ddof=1))
        if sigma == 0:
            raise AnalysisError("baseline is constant; EWMA cannot be calibrated")
        self.calibrate_from_moments(float(np.mean(x)), sigma)

    def calibrate_from_moments(self, mean: float, std: float) -> None:
        """Set the in-control mean and control limit directly."""
        if std <= 0:
            raise AnalysisError(f"baseline std must be positive, got {std}")
        self._mu0 = float(mean)
        sigma_z = std * np.sqrt(self.lam / (2.0 - self.lam))
        self._limit = self._mu0 + self.L * sigma_z
        self.reset()

    def reset(self) -> None:
        """Clear the smoothed state and the alarm latch."""
        self._z = self._mu0
        self._alarmed = False

    @property
    def statistic(self) -> float:
        """Current smoothed value z_t."""
        if self._z is None:
            raise AnalysisError("EWMA used before calibrate()")
        return self._z

    @property
    def alarmed(self) -> bool:
        """True once the control limit has been crossed (latched)."""
        return self._alarmed

    def update(self, x: float) -> bool:
        """Feed one observation; return True if the alarm is (now) raised."""
        if self._z is None or self._limit is None:
            raise AnalysisError("EWMA used before calibrate()")
        self._z = (1.0 - self.lam) * self._z + self.lam * float(x)
        if self._z > self._limit:
            self._alarmed = True
        return self._alarmed

    def run(self, times, values) -> Optional[float]:
        """Stream a whole series; return the first alarm time, or None."""
        t = as_1d_float_array(times, name="times", min_length=1)
        x = as_1d_float_array(values, name="values", min_length=1)
        if t.size != x.size:
            raise AnalysisError("times and values must have equal length")
        for ti, xi in zip(t, x):
            if self.update(xi):
                return float(ti)
        return None


def find_single_changepoint(values, min_segment: int = 5) -> int:
    """Locate the most likely single mean-shift point in a series.

    Returns the index ``tau`` (``min_segment <= tau <= n - min_segment``)
    that maximises the between-segment sum-of-squares reduction — the
    classical least-squares/AMOC changepoint.  Raises
    :class:`AnalysisError` if the series is too short.
    """
    x = as_1d_float_array(values, name="values", min_length=2)
    check_positive_int(min_segment, name="min_segment")
    n = x.size
    if n < 2 * min_segment:
        raise AnalysisError(
            f"need at least {2 * min_segment} samples for min_segment={min_segment}"
        )
    # Prefix sums let every split be scored in O(1).
    csum = np.concatenate([[0.0], np.cumsum(x)])
    csq = np.concatenate([[0.0], np.cumsum(x**2)])
    taus = np.arange(min_segment, n - min_segment + 1)

    left_n = taus.astype(float)
    right_n = (n - taus).astype(float)
    left_sum = csum[taus]
    right_sum = csum[n] - left_sum
    # Within-segment SSE for each candidate split.
    left_sse = csq[taus] - left_sum**2 / left_n
    right_sse = (csq[n] - csq[taus]) - right_sum**2 / right_n
    total_sse = left_sse + right_sse
    return int(taus[np.argmin(total_sse)])


def detect_level_jumps(values, *, window: int = 20, z_threshold: float = 4.0) -> List[int]:
    """Flag indices where the series jumps relative to its recent past.

    For each index ``i >= window``, compares ``x_i`` against the mean and
    standard deviation of the preceding ``window`` samples; indices with a
    z score above ``z_threshold`` are reported.  Used to localise abrupt
    Hölder-trajectory jumps.
    """
    x = as_1d_float_array(values, name="values", min_length=2)
    check_positive_int(window, name="window", minimum=3)
    check_positive(z_threshold, name="z_threshold")
    if x.size <= window:
        return []
    jumps: List[int] = []
    csum = np.concatenate([[0.0], np.cumsum(x)])
    csq = np.concatenate([[0.0], np.cumsum(x**2)])
    for i in range(window, x.size):
        lo = i - window
        mean = (csum[i] - csum[lo]) / window
        var = (csq[i] - csq[lo]) / window - mean**2
        std = np.sqrt(max(var, 0.0))
        if std == 0:
            continue
        if abs(x[i] - mean) / std > z_threshold:
            jumps.append(i)
    return jumps
