"""Nonparametric trend estimation: Mann–Kendall test and Sen's slope.

These are the workhorses of the *measurement-based* software-aging
literature (Garg et al. 1998; Vaidyanathan & Trivedi 1998): detect a
monotone trend in a resource counter with Mann–Kendall, quantify its rate
with Sen's robust slope, then extrapolate to exhaustion.  They serve here
as the classical baseline against which the paper's multifractal detector
is compared (experiment T4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import ndtr

from .._validation import as_1d_float_array
from ..exceptions import AnalysisError

_MAX_EXACT_N = 3000  # O(n^2) pair enumeration above this gets slow; subsample.


@dataclass(frozen=True)
class MannKendallResult:
    """Outcome of the Mann–Kendall trend test.

    Attributes
    ----------
    s:
        The MK S statistic (sum of pairwise sign concordances).
    z:
        Normal-approximation z score with tie correction and the
        continuity correction.
    p_value:
        Two-sided p value.
    trend:
        ``"increasing"``, ``"decreasing"`` or ``"none"`` at the supplied
        significance level.
    """

    s: float
    z: float
    p_value: float
    trend: str


def mann_kendall(values, alpha: float = 0.05) -> MannKendallResult:
    """Two-sided Mann–Kendall test for monotone trend.

    Uses the exact O(n^2) S statistic for series up to a few thousand
    samples and an evenly-spaced subsample above that (the test is then
    approximate but remains consistent for monotone alternatives).
    """
    x = as_1d_float_array(values, name="values", min_length=4)
    if x.size > _MAX_EXACT_N:
        idx = np.linspace(0, x.size - 1, _MAX_EXACT_N).astype(int)
        x = x[idx]
    n = x.size

    # S = sum over i<j of sign(x_j - x_i), vectorised via broadcasting.
    diffs = np.sign(x[None, :] - x[:, None])
    s = float(np.sum(np.triu(diffs, k=1)))

    # Variance with tie correction.
    __, counts = np.unique(x, return_counts=True)
    tie_term = float(np.sum(counts * (counts - 1) * (2 * counts + 5)))
    var_s = (n * (n - 1) * (2 * n + 5) - tie_term) / 18.0
    if var_s <= 0:
        raise AnalysisError("Mann-Kendall variance is zero (constant series?)")

    if s > 0:
        z = (s - 1) / np.sqrt(var_s)
    elif s < 0:
        z = (s + 1) / np.sqrt(var_s)
    else:
        z = 0.0
    p_value = float(2.0 * (1.0 - ndtr(abs(z))))

    if p_value < alpha:
        trend = "increasing" if z > 0 else "decreasing"
    else:
        trend = "none"
    return MannKendallResult(s=s, z=float(z), p_value=p_value, trend=trend)


def sen_slope(times, values, max_pairs: int = 250_000) -> float:
    """Sen's (Theil–Sen) slope: the median of all pairwise slopes.

    Robust to outliers and to the bursty noise that dominates memory
    counters.  For long series the full O(n^2) pair set is subsampled
    deterministically down to at most ``max_pairs`` pairs.
    """
    t = as_1d_float_array(times, name="times", min_length=2)
    x = as_1d_float_array(values, name="values", min_length=2)
    if t.size != x.size:
        raise AnalysisError("times and values must have equal length")
    n = t.size

    if n * (n - 1) // 2 <= max_pairs:
        i, j = np.triu_indices(n, k=1)
    else:
        # Deterministic low-discrepancy subsample of the pair lattice.
        rng = np.random.default_rng(12345)
        i = rng.integers(0, n - 1, size=max_pairs)
        j = rng.integers(1, n, size=max_pairs)
        keep = i < j
        i, j = i[keep], j[keep]
        if i.size == 0:
            raise AnalysisError("pair subsampling produced no valid pairs")
    dt = t[j] - t[i]
    valid = dt != 0
    if not valid.any():
        raise AnalysisError("all sampled pairs have identical times")
    slopes = (x[j][valid] - x[i][valid]) / dt[valid]
    return float(np.median(slopes))
