"""Detector scoring across runs: detection/false-alarm accounting and ROC.

A crash-warning detector is evaluated per *run*: given the run's true
crash time and the detector's first alarm time, the alarm is a true
warning when it fires inside the usable warning window, premature when it
fires before that window opens, and missed when it never fires.  This
module turns per-run (alarm, crash) pairs into the aggregate rows the
paper's comparison tables report, plus generic ROC machinery for
threshold sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import as_1d_float_array, check_nonnegative
from ..exceptions import AnalysisError, ValidationError


@dataclass(frozen=True)
class DetectionOutcome:
    """Aggregate detector performance over a set of runs.

    Attributes
    ----------
    n_runs:
        Number of runs scored.
    n_detected:
        Runs where the alarm fired in the valid warning window.
    n_premature:
        Runs where the first alarm fired before the window opened
        (treated as a false alarm: the operator would have rejuvenated a
        healthy machine).
    n_missed:
        Runs with no alarm before the crash.
    lead_times:
        Crash time minus alarm time for each *detected* run (seconds).
    """

    n_runs: int
    n_detected: int
    n_premature: int
    n_missed: int
    lead_times: Tuple[float, ...]

    @property
    def detection_rate(self) -> float:
        """Fraction of runs with a valid warning (NaN when no runs scored).

        An empty cell has no evidence either way; reporting ``0.0`` would
        make it indistinguishable from a detector that genuinely never
        fires, so the undefined rate is NaN (rendered "—" in tables).
        """
        return self.n_detected / self.n_runs if self.n_runs else float("nan")

    @property
    def premature_rate(self) -> float:
        """Fraction of runs whose first alarm was premature (NaN when no
        runs were scored — see :attr:`detection_rate`)."""
        return self.n_premature / self.n_runs if self.n_runs else float("nan")

    @property
    def median_lead_time(self) -> float:
        """Median lead time over detected runs (NaN when none detected)."""
        if not self.lead_times:
            return float("nan")
        return float(np.median(self.lead_times))

    @property
    def mean_lead_time(self) -> float:
        """Mean lead time over detected runs (NaN when none detected)."""
        if not self.lead_times:
            return float("nan")
        return float(np.mean(self.lead_times))


def score_detections(
    alarm_times: Sequence[Optional[float]],
    crash_times: Sequence[float],
    *,
    min_lead: float = 0.0,
    max_lead_fraction: float = 0.9,
) -> DetectionOutcome:
    """Score per-run first-alarm times against true crash times.

    An alarm at time ``a`` for a crash at ``c`` counts as *detected* when
    ``min_lead <= c - a <= max_lead_fraction * c`` — i.e. it fires before
    the crash but not in the run's infancy (an alarm in the first
    ``(1 - max_lead_fraction)`` of the run's life predicts nothing and is
    scored premature).  ``None`` alarms are missed.
    """
    crashes = as_1d_float_array(crash_times, name="crash_times", min_length=1)
    if len(alarm_times) != crashes.size:
        raise ValidationError(
            f"alarm_times ({len(alarm_times)}) and crash_times ({crashes.size}) differ in length"
        )
    check_nonnegative(min_lead, name="min_lead")
    if not (0.0 < max_lead_fraction <= 1.0):
        raise ValidationError(f"max_lead_fraction must lie in (0, 1], got {max_lead_fraction}")

    detected = premature = missed = 0
    leads: List[float] = []
    for alarm, crash in zip(alarm_times, crashes):
        if crash <= 0:
            raise ValidationError(f"crash times must be positive, got {crash}")
        if alarm is None or alarm >= crash:
            # Never fired, or fired only at/after the failure: useless.
            missed += 1
            continue
        lead = crash - float(alarm)
        if lead < min_lead:
            # Fired too late to act on; counts as missed.
            missed += 1
        elif lead > max_lead_fraction * crash:
            premature += 1
        else:
            detected += 1
            leads.append(lead)
    return DetectionOutcome(
        n_runs=int(crashes.size),
        n_detected=detected,
        n_premature=premature,
        n_missed=missed,
        lead_times=tuple(leads),
    )


def roc_curve(scores_positive, scores_negative) -> Tuple[np.ndarray, np.ndarray]:
    """ROC curve for a scalar score separating two labelled samples.

    Returns ``(fpr, tpr)`` arrays swept over every distinct threshold
    (score >= threshold predicts positive), including the (0,0) and (1,1)
    endpoints.

    The sweep is vectorised: both samples are sorted once and each
    threshold's exceedance count comes from a binary search, so the cost
    is O((m+n) log(m+n)) instead of the naive O((m+n)^2) per-threshold
    scan.  ``count >= th`` via ``searchsorted(side="left")`` reproduces
    the comparison-based count exactly, and ``count / size`` is the same
    float division ``np.mean`` performs on a boolean mask — the output is
    bit-identical to the loop implementation (enforced by a property
    test).
    """
    pos = as_1d_float_array(scores_positive, name="scores_positive", min_length=1)
    neg = as_1d_float_array(scores_negative, name="scores_negative", min_length=1)
    thresholds = np.unique(np.concatenate([pos, neg]))[::-1]
    pos_sorted = np.sort(pos)
    neg_sorted = np.sort(neg)
    tpr_mid = (pos.size - np.searchsorted(pos_sorted, thresholds,
                                          side="left")) / pos.size
    fpr_mid = (neg.size - np.searchsorted(neg_sorted, thresholds,
                                          side="left")) / neg.size
    fpr = np.concatenate([[0.0], fpr_mid, [1.0]])
    tpr = np.concatenate([[0.0], tpr_mid, [1.0]])
    return fpr, tpr


def auc(fpr, tpr) -> float:
    """Area under an ROC curve via the trapezoid rule.

    ``fpr`` must be non-decreasing (as produced by :func:`roc_curve`).
    """
    fpr = as_1d_float_array(fpr, name="fpr", min_length=2)
    tpr = as_1d_float_array(tpr, name="tpr", min_length=2)
    if fpr.size != tpr.size:
        raise ValidationError("fpr and tpr must have equal length")
    if np.any(np.diff(fpr) < 0):
        raise AnalysisError("fpr must be non-decreasing")
    return float(np.trapezoid(tpr, fpr))
