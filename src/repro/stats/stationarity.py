"""Stationarity diagnostics: the KPSS test.

Kwiatkowski–Phillips–Schmidt–Shin test with the null of (level- or
trend-) stationarity.  In this library it documents what the raw memory
counters are (nonstationary under aging) versus what the fractal
estimators require after preprocessing (approximate stationarity of
increments).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array, check_choice
from ..exceptions import AnalysisError

# Asymptotic critical values (Kwiatkowski et al. 1992, Table 1).
_CRITICAL = {
    "level": {0.10: 0.347, 0.05: 0.463, 0.025: 0.574, 0.01: 0.739},
    "trend": {0.10: 0.119, 0.05: 0.146, 0.025: 0.176, 0.01: 0.216},
}


@dataclass(frozen=True)
class KpssResult:
    """KPSS outcome.

    Attributes
    ----------
    statistic:
        The KPSS eta statistic.
    critical_values:
        Asymptotic critical values keyed by significance level.
    rejected_at_5pct:
        True when stationarity is rejected at the 5% level.
    regression:
        ``"level"`` or ``"trend"`` null.
    lags:
        Bandwidth used for the long-run variance.
    """

    statistic: float
    critical_values: dict
    rejected_at_5pct: bool
    regression: str
    lags: int


def kpss_test(values, *, regression: str = "level",
              lags: int | None = None) -> KpssResult:
    """KPSS test for (level or trend) stationarity.

    Parameters
    ----------
    values:
        The series under test.
    regression:
        ``"level"`` (null: stationary around a constant) or ``"trend"``
        (null: stationary around a linear trend).
    lags:
        Newey–West bandwidth; default is the standard
        ``floor(12 * (n/100)^0.25)``.
    """
    x = as_1d_float_array(values, name="values", min_length=32)
    check_choice(regression, name="regression", choices=("level", "trend"))
    n = x.size
    if lags is None:
        lags = int(np.floor(12.0 * (n / 100.0) ** 0.25))
    if lags < 0 or lags >= n:
        raise AnalysisError(f"lags must lie in [0, {n - 1}], got {lags}")

    if regression == "level":
        resid = x - np.mean(x)
    else:
        t = np.arange(n, dtype=float)
        coeffs = np.polyfit(t, x, deg=1)
        resid = x - np.polyval(coeffs, t)

    partial = np.cumsum(resid)
    # Newey-West long-run variance with Bartlett weights.
    s2 = float(np.sum(resid**2)) / n
    for lag in range(1, lags + 1):
        weight = 1.0 - lag / (lags + 1.0)
        s2 += 2.0 * weight * float(np.sum(resid[lag:] * resid[:-lag])) / n
    if s2 <= 0:
        raise AnalysisError("non-positive long-run variance (degenerate series)")

    eta = float(np.sum(partial**2)) / (n**2 * s2)
    crit = _CRITICAL[regression]
    return KpssResult(
        statistic=eta,
        critical_values=dict(crit),
        rejected_at_5pct=eta > crit[0.05],
        regression=regression,
        lags=lags,
    )
