"""Local Whittle (Gaussian semiparametric) estimator of long memory.

Robinson's (1995) estimator: for the lowest ``m`` Fourier frequencies,
minimise

``R(d) = log( mean_j [ lambda_j^{2d} I(lambda_j) ] ) - 2 d mean_j log lambda_j``

over the memory parameter ``d``; then ``H = d + 1/2``.  More efficient
than the GPH log-periodogram regression under the same assumptions, and
a useful fifth opinion in the Hurst table.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize_scalar

from .._validation import as_1d_float_array, check_in_range
from ..exceptions import AnalysisError


def local_whittle(values, *, bandwidth_exponent: float = 0.65) -> float:
    """Local Whittle estimate of the Hurst exponent of a noise-like series.

    Parameters
    ----------
    values:
        Stationary (noise-like) series.
    bandwidth_exponent:
        ``m = n ** bandwidth_exponent`` low frequencies are used.

    Returns
    -------
    The Hurst exponent estimate ``d_hat + 1/2``, clipped to (0, 1).
    """
    x = as_1d_float_array(values, name="values", min_length=128)
    check_in_range(bandwidth_exponent, name="bandwidth_exponent", low=0.3, high=0.9)
    n = x.size
    m = int(n**bandwidth_exponent)
    if m < 8:
        raise AnalysisError("too few frequencies for local Whittle")

    centered = x - np.mean(x)
    spec = np.abs(np.fft.rfft(centered)) ** 2 / (2.0 * np.pi * n)
    freqs = 2.0 * np.pi * np.arange(len(spec)) / n
    I = spec[1: m + 1]
    lam = freqs[1: m + 1]
    if np.any(I <= 0):
        raise AnalysisError("zero periodogram ordinates (constant input?)")
    log_lam = np.log(lam)
    mean_log_lam = float(np.mean(log_lam))

    def objective(d: float) -> float:
        weighted = np.exp(2.0 * d * log_lam) * I
        return float(np.log(np.mean(weighted)) - 2.0 * d * mean_log_lam)

    result = minimize_scalar(objective, bounds=(-0.49, 0.99), method="bounded")
    if not result.success:
        raise AnalysisError(f"local Whittle optimisation failed: {result.message}")
    h = float(result.x) + 0.5
    return float(np.clip(h, 1e-3, 1.0 - 1e-3))
