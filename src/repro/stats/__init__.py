"""Statistics toolkit supporting the aging analysis.

Contents
--------
``regression``
    Ordinary and weighted least squares on log-log scaling plots, with
    standard errors — every fractal estimator funnels through
    :func:`fit_line`.
``trend``
    Mann–Kendall trend test and Sen's (Theil–Sen) robust slope, the
    machinery behind the Vaidyanathan–Trivedi baseline detector.
``changepoint``
    Online CUSUM and EWMA detectors and an offline single-changepoint
    locator, used on Hölder-exponent summary series.
``bootstrap``
    Moving-block bootstrap confidence intervals for statistics of
    dependent series.
``roc``
    Detection/false-alarm scoring across runs for detector comparison.
"""

from .regression import LineFit, fit_line, fit_line_wls
from .trend import MannKendallResult, mann_kendall, sen_slope
from .changepoint import (
    CusumDetector,
    EwmaDetector,
    find_single_changepoint,
)
from .bootstrap import block_bootstrap_ci
from .roc import DetectionOutcome, score_detections, roc_curve, auc
from .whittle import local_whittle
from .tails import hill_estimator, hill_plot_data, tail_quantile_ratio
from .stationarity import kpss_test, KpssResult

__all__ = [
    "LineFit",
    "fit_line",
    "fit_line_wls",
    "MannKendallResult",
    "mann_kendall",
    "sen_slope",
    "CusumDetector",
    "EwmaDetector",
    "find_single_changepoint",
    "block_bootstrap_ci",
    "DetectionOutcome",
    "score_detections",
    "roc_curve",
    "auc",
    "local_whittle",
    "hill_estimator",
    "hill_plot_data",
    "tail_quantile_ratio",
    "kpss_test",
    "KpssResult",
]
