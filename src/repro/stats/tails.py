"""Heavy-tail analysis: Hill estimator and tail diagnostics.

The workload model rests on Pareto ON/OFF durations (tail index
``alpha`` in (1, 2) gives LRD aggregate demand); these tools verify the
heavy-tailedness assumption on simulated or measured quantities:

* :func:`hill_estimator` — the classical Hill estimate of the tail index
  from the k largest order statistics, with its standard error.
* :func:`hill_plot_data` — the Hill estimate swept over k (the "Hill
  plot" used to pick a stable region).
* :func:`tail_quantile_ratio` — a quick scalar diagnostic: the
  99.9%/99% quantile ratio, far larger for power-law tails than for
  exponential ones.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import as_1d_float_array, check_positive_int
from ..exceptions import AnalysisError


def hill_estimator(values, k: int | None = None) -> Tuple[float, float]:
    """Hill estimate of the tail index of a positive sample.

    Parameters
    ----------
    values:
        Sample (only strictly positive entries are used).
    k:
        Number of upper order statistics; defaults to ``sqrt(n)``
        (a standard compromise between bias and variance).

    Returns
    -------
    (alpha_hat, stderr):
        The tail index estimate and its asymptotic standard error
        ``alpha / sqrt(k)``.
    """
    x = as_1d_float_array(values, name="values", min_length=32)
    x = x[x > 0]
    if x.size < 32:
        raise AnalysisError("need at least 32 positive samples for Hill")
    n = x.size
    if k is None:
        k = int(np.sqrt(n))
    check_positive_int(k, name="k", minimum=5)
    if k >= n:
        raise AnalysisError(f"k ({k}) must be smaller than the sample size ({n})")

    order = np.sort(x)[::-1]  # descending
    top = order[: k + 1]
    logs = np.log(top[:-1]) - np.log(top[-1])
    mean_excess = float(np.mean(logs))
    if mean_excess <= 0:
        raise AnalysisError("degenerate upper tail (ties at the maximum?)")
    alpha = 1.0 / mean_excess
    return alpha, alpha / np.sqrt(k)


def hill_plot_data(values, *, k_min: int = 10, n_points: int = 30,
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Hill estimates over a log-spaced sweep of k.

    Returns ``(ks, alphas)`` for inspecting estimator stability; a flat
    stretch indicates a genuine power-law regime.
    """
    x = as_1d_float_array(values, name="values", min_length=64)
    x = x[x > 0]
    if x.size < 64:
        raise AnalysisError("need at least 64 positive samples for a Hill plot")
    k_max = x.size // 2
    if k_max <= k_min:
        raise AnalysisError("sample too small for the requested k range")
    ks = np.unique(np.round(np.geomspace(k_min, k_max, n_points)).astype(int))
    alphas = np.array([hill_estimator(x, k=int(k))[0] for k in ks])
    return ks, alphas


def tail_quantile_ratio(values, *, q_hi: float = 0.999, q_lo: float = 0.99) -> float:
    """Ratio of two extreme quantiles — a scale-free tail-weight score.

    For an exponential tail the ratio approaches
    ``log(1-q_hi)/log(1-q_lo)`` slowly (≈ 1.5 here); for a Pareto(alpha)
    tail it is ``((1-q_lo)/(1-q_hi))^(1/alpha)`` (≈ 3.2 at alpha = 2,
    10 at alpha = 1).
    """
    x = as_1d_float_array(values, name="values", min_length=128)
    if not (0.5 < q_lo < q_hi < 1.0):
        raise AnalysisError("need 0.5 < q_lo < q_hi < 1")
    lo, hi = np.quantile(x, [q_lo, q_hi])
    if lo <= 0:
        raise AnalysisError("lower quantile is non-positive; shift the sample")
    return float(hi / lo)
