"""Least-squares line fitting with uncertainty.

Every scaling-law estimator in :mod:`repro.fractal` reduces to fitting a
straight line through points in a log-log plane; this module is that single
well-tested code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array
from ..exceptions import AnalysisError, ValidationError


@dataclass(frozen=True)
class LineFit:
    """Result of a straight-line fit ``y ≈ slope * x + intercept``.

    Attributes
    ----------
    slope, intercept:
        Fitted coefficients.
    stderr_slope, stderr_intercept:
        Standard errors under the usual homoskedastic Gaussian model.
    r_squared:
        Coefficient of determination of the fit.
    n:
        Number of points used.
    """

    slope: float
    intercept: float
    stderr_slope: float
    stderr_intercept: float
    r_squared: float
    n: int

    def predict(self, x) -> np.ndarray:
        """Evaluate the fitted line at ``x``."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept

    def residuals(self, x, y) -> np.ndarray:
        """Return ``y - predict(x)``."""
        return np.asarray(y, dtype=float) - self.predict(x)


def fit_line(x, y) -> LineFit:
    """Ordinary least squares fit of ``y`` on ``x``.

    Raises :class:`AnalysisError` when fewer than two distinct x values
    are supplied (the slope would be undefined).
    """
    x = as_1d_float_array(x, name="x", min_length=2)
    y = as_1d_float_array(y, name="y", min_length=2)
    if x.size != y.size:
        raise ValidationError(f"x and y must have equal length, got {x.size} != {y.size}")
    return fit_line_wls(x, y, np.ones_like(x))


def fit_line_wls(x, y, weights) -> LineFit:
    """Weighted least squares fit of ``y`` on ``x``.

    ``weights`` are relative precision weights (inverse variances up to a
    common factor).  With unit weights this reduces to OLS.
    """
    x = as_1d_float_array(x, name="x", min_length=2)
    y = as_1d_float_array(y, name="y", min_length=2)
    w = as_1d_float_array(weights, name="weights", min_length=2)
    if not (x.size == y.size == w.size):
        raise ValidationError("x, y and weights must have equal length")
    if np.any(w < 0):
        raise ValidationError("weights must be non-negative")
    if np.count_nonzero(w) < 2:
        raise AnalysisError("need at least two points with positive weight")

    sw = np.sum(w)
    xbar = np.sum(w * x) / sw
    ybar = np.sum(w * y) / sw
    sxx = np.sum(w * (x - xbar) ** 2)
    if sxx <= 0:
        raise AnalysisError("x values are all identical; slope undefined")
    sxy = np.sum(w * (x - xbar) * (y - ybar))
    slope = sxy / sxx
    intercept = ybar - slope * xbar

    resid = y - (slope * x + intercept)
    n = int(np.count_nonzero(w))
    dof = max(n - 2, 1)
    sigma2 = np.sum(w * resid**2) / dof
    stderr_slope = float(np.sqrt(sigma2 / sxx))
    stderr_intercept = float(np.sqrt(sigma2 * (1.0 / sw + xbar**2 / sxx)))

    syy = np.sum(w * (y - ybar) ** 2)
    r_squared = 1.0 if syy == 0 else float(1.0 - np.sum(w * resid**2) / syy)

    return LineFit(
        slope=float(slope),
        intercept=float(intercept),
        stderr_slope=stderr_slope,
        stderr_intercept=stderr_intercept,
        r_squared=r_squared,
        n=n,
    )
