"""Moving-block bootstrap confidence intervals.

Memory-counter series are strongly dependent, so the iid bootstrap badly
understates uncertainty.  The moving-block bootstrap resamples contiguous
blocks, preserving short-range dependence within blocks; it is the
standard tool for CIs on statistics of LRD-ish series at laptop scale.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from .._validation import as_1d_float_array, check_in_range, check_positive_int
from ..exceptions import AnalysisError


def block_bootstrap_ci(
    values,
    statistic: Callable[[np.ndarray], float],
    *,
    block_length: int | None = None,
    n_resamples: int = 500,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> Tuple[float, float, float]:
    """Percentile CI for ``statistic`` under the moving-block bootstrap.

    Parameters
    ----------
    values:
        The observed series.
    statistic:
        Function mapping a 1-D array to a scalar.
    block_length:
        Length of resampled blocks; defaults to ``ceil(n ** (1/3))``, the
        usual rate-optimal choice up to constants.
    n_resamples:
        Number of bootstrap replicates.
    confidence:
        Two-sided coverage level in (0, 1).

    Returns
    -------
    (point, lower, upper):
        The statistic on the original series and the percentile interval.
    """
    x = as_1d_float_array(values, name="values", min_length=8)
    check_positive_int(n_resamples, name="n_resamples")
    check_in_range(confidence, name="confidence", low=0.0, high=1.0,
                   inclusive_low=False, inclusive_high=False)
    n = x.size
    if block_length is None:
        block_length = int(np.ceil(n ** (1.0 / 3.0)))
    check_positive_int(block_length, name="block_length")
    if block_length >= n:
        raise AnalysisError(f"block_length ({block_length}) must be < series length ({n})")
    if rng is None:
        rng = np.random.default_rng()

    point = float(statistic(x))
    n_blocks = int(np.ceil(n / block_length))
    max_start = n - block_length
    replicates = np.empty(n_resamples)
    for b in range(n_resamples):
        starts = rng.integers(0, max_start + 1, size=n_blocks)
        pieces = [x[s:s + block_length] for s in starts]
        resampled = np.concatenate(pieces)[:n]
        replicates[b] = statistic(resampled)
    if not np.all(np.isfinite(replicates)):
        raise AnalysisError("statistic produced non-finite bootstrap replicates")

    alpha = 1.0 - confidence
    lower, upper = np.quantile(replicates, [alpha / 2.0, 1.0 - alpha / 2.0])
    return point, float(lower), float(upper)
