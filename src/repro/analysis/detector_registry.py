"""First-class named detectors for campaign tournaments.

The campaign engine historically hard-wired one detector family (the
Hölder variance detector behind :func:`repro.core.pipeline.analyze_counter`).
This registry turns every detector the repo knows into a named
competitor with one uniform contract, so campaigns can sweep the full
scenario × detector grid and the scoreboard can rank families against
each other:

========================  =====================================================
name                      detector
========================  =====================================================
``holder``                Hölder variance detector with the spec's own
                          :class:`~repro.core.detectors.DetectorConfig`
                          (the legacy default — alarms bit-identical to the
                          pre-registry campaign path)
``holder-threshold``      Hölder detector forced to the threshold scheme
``holder-cusum``          Hölder detector forced to the CUSUM scheme
``holder-ewma``           Hölder detector forced to the EWMA scheme
``trend``                 Sen-slope exhaustion extrapolation
                          (:class:`~repro.baselines.TrendExhaustionDetector`)
``naive``                 raw-counter threshold rule
                          (:class:`~repro.baselines.RawThresholdDetector`)
``entropy``               CHAOS-style rolling increment entropy
                          (:class:`~repro.baselines.RollingEntropyDetector`)
========================  =====================================================

Each evaluation returns the detector's first alarm time plus — when
score collection is on — the *peak decision statistic* over the run's
healthy and pre-crash segments.  Campaign runs persist those two floats
per (run, detector); ROC threshold sweeps then replay entirely from the
stored peaks (:func:`repro.stats.roc.roc_curve`), with no re-simulation.

Evaluation is observation-only by construction: alarm times come from
each detector's unmodified ``run`` path, and the score pass never feeds
back into it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..baselines import (
    RawThresholdDetector,
    RollingEntropyDetector,
    TrendExhaustionDetector,
)
from ..core import analyze_counter
from ..core.detectors import HolderVarianceDetector
from ..exceptions import ValidationError
from ..trace.series import TraceBundle

__all__ = [
    "PRECRASH_FRACTION",
    "DetectorEvaluation",
    "detector_names",
    "evaluate_detector",
    "register_detector",
    "split_peak_scores",
]

# Fraction of a crashed run's lifetime (counted back from the crash)
# whose decision scores are pooled as ROC positives; everything earlier
# counts as the run's own healthy segment.
PRECRASH_FRACTION = 0.25


@dataclass(frozen=True)
class DetectorEvaluation:
    """One detector's verdict on one run.

    Attributes
    ----------
    detector:
        Registry name of the detector that produced this evaluation.
    alarm_time:
        First alarm time (seconds), or None when it never fired.
    peak_healthy:
        Peak decision statistic over the healthy segment (the whole
        monitored run when it never crashed, the early
        ``1 - PRECRASH_FRACTION`` of life when it did); None when score
        collection was off or the segment held no monitored samples.
    peak_precrash:
        Peak decision statistic over the last ``PRECRASH_FRACTION`` of a
        crashed run's life; None for healthy runs or without scores.
    """

    detector: str
    alarm_time: Optional[float]
    peak_healthy: Optional[float] = None
    peak_precrash: Optional[float] = None


def split_peak_scores(
    times: np.ndarray,
    scores: np.ndarray,
    *,
    crash_time: Optional[float],
    precrash_fraction: float = PRECRASH_FRACTION,
) -> Tuple[Optional[float], Optional[float]]:
    """Split a decision-score series into (peak_healthy, peak_precrash).

    For a crashed run the pre-crash segment is the final
    ``precrash_fraction`` of its life; scores before that boundary are
    the run's healthy evidence.  A run that never crashed is healthy
    throughout.  Empty segments yield None rather than a fake peak.
    """
    times = np.asarray(times, dtype=float)
    scores = np.asarray(scores, dtype=float)
    if times.size == 0:
        return None, None
    if crash_time is None:
        return float(np.max(scores)), None
    cutoff = float(crash_time) * (1.0 - precrash_fraction)
    healthy = scores[times < cutoff]
    precrash = scores[(times >= cutoff) & (times <= float(crash_time))]
    peak_healthy = float(np.max(healthy)) if healthy.size else None
    peak_precrash = float(np.max(precrash)) if precrash.size else None
    return peak_healthy, peak_precrash


class _HolderDetector:
    """Adapter for the Hölder variance detector (optionally forcing a
    scheme over the spec's configuration)."""

    def __init__(self, name: str, scheme: Optional[str] = None) -> None:
        self.name = name
        self._scheme = scheme

    def _config(self, spec):
        if self._scheme is None:
            return spec.detector
        return replace(spec.detector, scheme=self._scheme)

    def evaluate(self, bundle: TraceBundle, spec, *,
                 collect_scores: bool = True) -> DetectorEvaluation:
        config = self._config(spec)
        analysis = analyze_counter(
            bundle[spec.counter],
            indicator=spec.indicator,
            holder_engine=getattr(spec, "holder_engine", "batch"),
            detector_config=config,
        )
        peak_healthy = peak_precrash = None
        if collect_scores:
            times, scores = HolderVarianceDetector(
                config=config).decision_scores(analysis.indicator)
            peak_healthy, peak_precrash = split_peak_scores(
                times, scores, crash_time=_crash_time(bundle))
        return DetectorEvaluation(
            detector=self.name,
            alarm_time=analysis.alarm.alarm_time,
            peak_healthy=peak_healthy,
            peak_precrash=peak_precrash,
        )


class _BaselineDetector:
    """Adapter for the raw-counter baselines (trend/naive/entropy).

    ``factory`` builds a fresh detector per evaluation; ``first_alarm``
    maps its ``run`` result to an alarm time (the baselines disagree on
    return shape).
    """

    def __init__(self, name: str, factory: Callable[[], object],
                 first_alarm: Callable[[object], Optional[float]]) -> None:
        self.name = name
        self._factory = factory
        self._first_alarm = first_alarm

    def evaluate(self, bundle: TraceBundle, spec, *,
                 collect_scores: bool = True) -> DetectorEvaluation:
        ts = bundle[spec.counter]
        detector = self._factory()
        alarm_time = self._first_alarm(detector.run(ts))
        peak_healthy = peak_precrash = None
        if collect_scores:
            times, scores = detector.decision_scores(ts)
            peak_healthy, peak_precrash = split_peak_scores(
                times, scores, crash_time=_crash_time(bundle))
        return DetectorEvaluation(
            detector=self.name,
            alarm_time=alarm_time,
            peak_healthy=peak_healthy,
            peak_precrash=peak_precrash,
        )


def _crash_time(bundle: TraceBundle) -> Optional[float]:
    crash_time = bundle.metadata.get("crash_time")
    return None if crash_time is None else float(crash_time)


_REGISTRY: Dict[str, object] = {}


def register_detector(adapter) -> None:
    """Add a detector adapter (``.name`` + ``.evaluate``) to the registry.

    Registering an existing name replaces it — deliberate, so downstream
    studies can swap in tuned variants under the canonical names.
    """
    if not getattr(adapter, "name", None):
        raise ValidationError("detector adapter needs a non-empty .name")
    _REGISTRY[adapter.name] = adapter


def detector_names() -> Tuple[str, ...]:
    """Registered detector names, sorted."""
    return tuple(sorted(_REGISTRY))


def evaluate_detector(name: str, bundle: TraceBundle, spec, *,
                      collect_scores: bool = True) -> DetectorEvaluation:
    """Run one named detector over one run's trace bundle.

    ``spec`` supplies the monitored counter and (for the Hölder family)
    the indicator/detector configuration.  ``collect_scores=False``
    skips the decision-statistic pass entirely — alarm times are
    identical either way.
    """
    try:
        adapter = _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown detector {name!r}; registered: {detector_names()}"
        ) from None
    return adapter.evaluate(bundle, spec, collect_scores=collect_scores)


register_detector(_HolderDetector("holder"))
register_detector(_HolderDetector("holder-threshold", scheme="threshold"))
register_detector(_HolderDetector("holder-cusum", scheme="cusum"))
register_detector(_HolderDetector("holder-ewma", scheme="ewma"))
register_detector(_BaselineDetector(
    "trend", TrendExhaustionDetector, lambda alarm: alarm.alarm_time))
register_detector(_BaselineDetector(
    "naive", RawThresholdDetector, lambda alarm: alarm))
register_detector(_BaselineDetector(
    "entropy", RollingEntropyDetector, lambda alarm: alarm))
