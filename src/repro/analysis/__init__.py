"""Experiment campaign framework.

The benches each hand-roll "run a fleet, analyse every run, aggregate".
This subpackage is that workflow as a first-class, reusable API:

* :class:`~repro.analysis.campaign.ExperimentSpec` — a declarative
  description of one experimental cell (scenario, profile, fault factor,
  detector settings, number of seeds).
* :func:`~repro.analysis.campaign.run_campaign` — run a list of specs,
  producing one :class:`~repro.analysis.campaign.CellResult` per cell
  with per-run records and aggregate detection metrics.
* :mod:`~repro.analysis.results` — JSON-file persistence of campaign
  results and a flat-table view for reporting.
* :mod:`~repro.analysis.detector_registry` — named detector families
  (Hölder variants, trend, naive, entropy) with one uniform evaluation
  contract, so campaigns sweep the scenario × detector grid.
* :mod:`~repro.analysis.scoreboard` — the detector tournament artifact:
  per-(cell, detector) ROC/AUC, lead-time quantiles and false-alarm
  rates, rebuildable from saved results alone.
"""

from .campaign import (
    ExperimentSpec,
    RunRecord,
    CellResult,
    CampaignOutcome,
    MissingUnit,
    campaign_fingerprint,
    cells_payload,
    detector_grid,
    execute_campaign,
    run_campaign,
)
from .checkpoint import CampaignJournal, config_fingerprint
from .detector_registry import (
    DetectorEvaluation,
    detector_names,
    evaluate_detector,
    register_detector,
    split_peak_scores,
)
from .results import save_results, load_results, results_table
from .scoreboard import (
    SCOREBOARD_SCHEMA,
    build_scoreboard,
    load_scoreboard,
    publish_scoreboard,
    save_scoreboard,
    scoreboard_from_results,
    scoreboard_table,
)

__all__ = [
    "ExperimentSpec",
    "RunRecord",
    "CellResult",
    "CampaignOutcome",
    "MissingUnit",
    "CampaignJournal",
    "DetectorEvaluation",
    "SCOREBOARD_SCHEMA",
    "build_scoreboard",
    "campaign_fingerprint",
    "config_fingerprint",
    "cells_payload",
    "detector_grid",
    "detector_names",
    "evaluate_detector",
    "execute_campaign",
    "load_results",
    "load_scoreboard",
    "publish_scoreboard",
    "register_detector",
    "results_table",
    "run_campaign",
    "save_results",
    "save_scoreboard",
    "scoreboard_from_results",
    "scoreboard_table",
    "split_peak_scores",
]
