"""Experiment campaign framework.

The benches each hand-roll "run a fleet, analyse every run, aggregate".
This subpackage is that workflow as a first-class, reusable API:

* :class:`~repro.analysis.campaign.ExperimentSpec` — a declarative
  description of one experimental cell (scenario, profile, fault factor,
  detector settings, number of seeds).
* :func:`~repro.analysis.campaign.run_campaign` — run a list of specs,
  producing one :class:`~repro.analysis.campaign.CellResult` per cell
  with per-run records and aggregate detection metrics.
* :mod:`~repro.analysis.results` — JSON-file persistence of campaign
  results and a flat-table view for reporting.
"""

from .campaign import (
    ExperimentSpec,
    RunRecord,
    CellResult,
    CampaignOutcome,
    MissingUnit,
    campaign_fingerprint,
    cells_payload,
    execute_campaign,
    run_campaign,
)
from .checkpoint import CampaignJournal, config_fingerprint
from .results import save_results, load_results, results_table

__all__ = [
    "ExperimentSpec",
    "RunRecord",
    "CellResult",
    "CampaignOutcome",
    "MissingUnit",
    "CampaignJournal",
    "campaign_fingerprint",
    "config_fingerprint",
    "cells_payload",
    "execute_campaign",
    "run_campaign",
    "save_results",
    "load_results",
    "results_table",
]
