"""Append-only checkpoint journals for campaign execution.

A campaign is hours of simulation whose parent process can itself be
killed — the stress-to-crash methodology applies to the harness as much
as to the hosts it simulates.  The journal makes finished work durable
the moment it completes:

* one **header** line carrying the journal schema and a fingerprint of
  the campaign configuration (specs + seeds), so a journal can never be
  replayed against a different campaign;
* one **unit** line per completed work unit (``key`` + JSON payload),
  appended with an ``fsync`` per line so a SIGKILL at any instant loses
  at most the unit in flight.

:func:`CampaignJournal.load` tolerates exactly the damage a crash can
cause — a truncated final line — and rejects anything else (corrupt
interior lines, foreign schemas, fingerprint mismatches) loudly.
Because completed units are keyed by a config/seed fingerprint and the
work itself is deterministic, ``campaign --resume`` produces a payload
bit-identical to an uninterrupted run.

The journal is deliberately campaign-agnostic (keys and JSON payloads),
so fleet-scale tooling can reuse it for any resumable unit-of-work map.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..exceptions import TraceError, ValidationError
from ..obs import session as _obs
from ..obs.atomic import fsync_handle
from ..obs.logger import get_logger

__all__ = [
    "JOURNAL_SCHEMA",
    "config_fingerprint",
    "CampaignJournal",
    "JournalState",
]

JOURNAL_SCHEMA = "repro.campaign-journal/1"

_log = get_logger("analysis.checkpoint")


@dataclass
class JournalState:
    """Everything :meth:`CampaignJournal.read_state` recovers from disk.

    ``last_progress_at`` is the newest unit heartbeat (wall-clock
    seconds since the epoch), or None for journals written before
    heartbeats existed — resume stays backward compatible.
    """

    units: Dict[str, dict] = field(default_factory=dict)
    last_progress_at: Optional[float] = None


def config_fingerprint(config: object) -> str:
    """Stable fingerprint of a JSON-able configuration object.

    Canonical-JSON SHA-256, truncated to 16 hex chars — collisions are
    irrelevant at that length for "is this the same campaign?" checks,
    and short enough to read in a journal header or error message.
    """
    try:
        canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    except TypeError as exc:
        raise ValidationError(
            f"fingerprint config must be JSON-able: {exc}") from None
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


class CampaignJournal:
    """Append-only JSONL journal of completed work units.

    Open for appending with the constructor (writes/validates the
    header), read back with :meth:`load`.  Usable as a context manager.
    """

    def __init__(self, path: str | os.PathLike, *, fingerprint: str):
        self.path = os.fspath(path)
        self.fingerprint = fingerprint
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        fresh = not (os.path.exists(self.path)
                     and os.path.getsize(self.path) > 0)
        if not fresh:
            # Appending to an existing journal: it must belong to this
            # campaign.  load() validates header + fingerprint.
            self.load(self.path, fingerprint=fingerprint)
        self._handle = open(self.path, "a")
        if fresh:
            self._append({"kind": "header", "schema": JOURNAL_SCHEMA,
                          "fingerprint": fingerprint})

    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True))
        self._handle.write("\n")
        fsync_handle(self._handle)

    def record_unit(self, key: str, payload: dict) -> None:
        """Durably journal one completed unit (flushed + fsynced).

        Each unit line carries a ``wall_time`` heartbeat so a resumed
        (or scraped) campaign can report when the journal last made
        progress.  Readers that predate the field ignore it.
        """
        if not key:
            raise ValidationError("journal unit key must be non-empty")
        self._append({"kind": "unit", "key": key, "payload": payload,
                      "wall_time": time.time()})
        _obs.counter("campaign.journal_units").inc()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -----------------------------------------------------------

    @staticmethod
    def _lines(path: str) -> Iterator[tuple[int, str, bool]]:
        with open(path, "r") as handle:
            lines = handle.readlines()
        for i, line in enumerate(lines):
            yield i + 1, line, i == len(lines) - 1

    @classmethod
    def load(
        cls,
        path: str | os.PathLike,
        *,
        fingerprint: Optional[str] = None,
    ) -> Dict[str, dict]:
        """Read a journal back as ``{key: payload}``.

        Validates the header schema and (when given) the campaign
        fingerprint.  A truncated *final* line — the only damage a
        crash mid-append can cause — is dropped with a warning and a
        ``campaign.journal_truncated`` counter increment; a corrupt
        interior line means the file was not written by this journal
        and is a hard :class:`~repro.exceptions.TraceError`.  Duplicate
        keys keep the first record (units are deterministic, so later
        duplicates are identical re-executions).
        """
        return cls.read_state(path, fingerprint=fingerprint).units

    @classmethod
    def read_state(
        cls,
        path: str | os.PathLike,
        *,
        fingerprint: Optional[str] = None,
    ) -> JournalState:
        """Like :meth:`load`, but return the full :class:`JournalState`
        (units plus the last-progress heartbeat)."""
        path = os.fspath(path)
        header: Optional[dict] = None
        units: Dict[str, dict] = {}
        last_progress_at: Optional[float] = None
        for lineno, line, is_last in cls._lines(path):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if is_last:
                    _log.warning(
                        "dropping truncated final journal line "
                        "(crash mid-append)", path=path, line=lineno)
                    _obs.counter("campaign.journal_truncated").inc()
                    continue
                raise TraceError(
                    f"corrupt journal line {lineno} in {path} "
                    f"(not crash damage: interior lines are written "
                    f"atomically per record)")
            if not isinstance(record, dict):
                raise TraceError(
                    f"journal line {lineno} in {path} is not an object")
            kind = record.get("kind")
            if header is None:
                if kind != "header":
                    raise TraceError(
                        f"{path} does not start with a journal header")
                if record.get("schema") != JOURNAL_SCHEMA:
                    raise TraceError(
                        f"unsupported journal schema "
                        f"{record.get('schema')!r} in {path} "
                        f"(expected {JOURNAL_SCHEMA!r})")
                if (fingerprint is not None
                        and record.get("fingerprint") != fingerprint):
                    raise TraceError(
                        f"journal {path} belongs to a different campaign "
                        f"(fingerprint {record.get('fingerprint')!r}, "
                        f"expected {fingerprint!r}); refusing to resume")
                header = record
                continue
            if kind == "unit":
                key = record.get("key")
                payload = record.get("payload")
                if not isinstance(key, str) or not isinstance(payload, dict):
                    raise TraceError(
                        f"malformed unit record at line {lineno} in {path}")
                units.setdefault(key, payload)
                heartbeat = record.get("wall_time")
                if isinstance(heartbeat, (int, float)):
                    if (last_progress_at is None
                            or heartbeat > last_progress_at):
                        last_progress_at = float(heartbeat)
            else:
                # Unknown-but-well-formed kinds are skipped so newer
                # journal writers stay readable by older tools.
                _log.warning("skipping unknown journal record kind",
                             path=path, line=lineno, kind=kind)
        if header is None:
            raise TraceError(f"{path} contains no journal header")
        return JournalState(units=units, last_progress_at=last_progress_at)
