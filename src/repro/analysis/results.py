"""Persistence and tabulation of campaign results.

Results round-trip through plain JSON so campaigns can run once
(expensively) and be re-tabulated or compared later.  The schema is
versioned; loading an unknown version fails loudly rather than guessing.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Dict, List

from ..core.detectors import DetectorConfig
from ..exceptions import TraceError
from ..obs.atomic import atomic_write_json
from .campaign import CellResult, ExperimentSpec, RunRecord
from ..stats.roc import DetectionOutcome

# v2 added per-run detector names and peak decision statistics (the
# scoreboard's ROC inputs); v1 files predate the detector tournament and
# load with every run mapped to the default Hölder detector, no peaks.
_SCHEMA_VERSION = 2
_READABLE_VERSIONS = (1, 2)


def save_results(results: Dict[str, CellResult], path: str | os.PathLike) -> None:
    """Write campaign results to a JSON file (atomically)."""
    payload = {
        "schema_version": _SCHEMA_VERSION,
        "cells": {
            name: {
                "spec": _spec_to_dict(cell.spec),
                "runs": [asdict(r) for r in cell.runs],
                "outcome": _outcome_to_dict(cell.outcome),
                "false_alarms": cell.false_alarms,
            }
            for name, cell in results.items()
        },
    }
    atomic_write_json(path, payload)


def load_results(path: str | os.PathLike) -> Dict[str, CellResult]:
    """Read campaign results previously written by :func:`save_results`."""
    with open(path, "r") as handle:
        payload = json.load(handle)
    version = payload.get("schema_version")
    if version not in _READABLE_VERSIONS:
        raise TraceError(
            f"unsupported results schema version {version!r} "
            f"(readable: {_READABLE_VERSIONS})"
        )
    out: Dict[str, CellResult] = {}
    for name, cell in payload["cells"].items():
        spec = _spec_from_dict(cell["spec"])
        runs = [RunRecord(**r) for r in cell["runs"]]
        outcome = _outcome_from_dict(cell["outcome"])
        out[name] = CellResult(
            spec=spec, runs=runs, outcome=outcome,
            false_alarms=int(cell["false_alarms"]),
        )
    return out


def results_table(results: Dict[str, CellResult]) -> List[List[object]]:
    """Flatten results into rows for :func:`repro.report.render_table`.

    Columns: cell, runs, crashed, detected, missed, median lead,
    false alarms.
    """
    rows: List[List[object]] = []
    for name, cell in results.items():
        detected = cell.outcome.n_detected if cell.outcome else 0
        missed = cell.outcome.n_missed if cell.outcome else 0
        rows.append([
            name,
            len(cell.runs),
            cell.n_crashed,
            detected,
            missed,
            cell.median_lead,
            cell.false_alarms,
        ])
    return rows


def _spec_to_dict(spec: ExperimentSpec) -> dict:
    data = asdict(spec)
    data["detector"] = asdict(spec.detector)
    return data


def _spec_from_dict(data: dict) -> ExperimentSpec:
    data = dict(data)
    data["detector"] = DetectorConfig(**data["detector"])
    return ExperimentSpec(**data)


def _outcome_to_dict(outcome: DetectionOutcome | None) -> dict | None:
    if outcome is None:
        return None
    return {
        "n_runs": outcome.n_runs,
        "n_detected": outcome.n_detected,
        "n_premature": outcome.n_premature,
        "n_missed": outcome.n_missed,
        "lead_times": list(outcome.lead_times),
    }


def _outcome_from_dict(data: dict | None) -> DetectionOutcome | None:
    if data is None:
        return None
    return DetectionOutcome(
        n_runs=int(data["n_runs"]),
        n_detected=int(data["n_detected"]),
        n_premature=int(data["n_premature"]),
        n_missed=int(data["n_missed"]),
        lead_times=tuple(data["lead_times"]),
    )
