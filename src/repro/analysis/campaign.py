"""Declarative experiment campaigns over the simulator and analysis chain.

An :class:`ExperimentSpec` names everything that distinguishes one
experimental cell; :func:`run_campaign` executes a list of cells, each as
a fleet of seeded runs analysed with the configured detector, and
returns aggregates ready for tabulation.  This is the machinery behind
the multi-run experiments (T3/T4/A2-style studies) exposed as a public
API for downstream parameter studies.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field, replace
from functools import partial
from typing import Dict, List, Optional, Sequence

import numpy as np

from .._validation import check_choice, check_positive, check_positive_int
from ..core.detectors import DetectorConfig
from ..core.engines import holder_engine_names
from ..exceptions import AnalysisError, ExecutionError, ValidationError
from ..memsim.machine import FLEET_ENGINES
from ..memsim.scenarios import SCENARIO_NAMES, build_scenario
from ..obs import get_logger
from ..obs import ops as _ops
from ..obs import session as _obs
from ..perf.pool import resilient_map, resolve_workers
from ..stats.roc import DetectionOutcome, score_detections
from ..testing.chaos import ChaosError, ChaosSpec, chaos_pre_unit
from .checkpoint import CampaignJournal, config_fingerprint
from .detector_registry import detector_names, evaluate_detector

_log = get_logger("analysis.campaign")


@dataclass(frozen=True)
class ExperimentSpec:
    """One experimental cell.

    Attributes
    ----------
    name:
        Label used in result tables (must be unique in a campaign).
    scenario:
        One of :data:`repro.memsim.scenarios.SCENARIO_NAMES`.
    profile:
        ``"nt4"`` or ``"w2k"``.
    n_runs:
        Number of seeded runs in the cell.
    base_seed:
        Seed of the first run (run i uses ``base_seed + i``).
    fault_factor:
        Aging-intensity multiplier (0 disables aging via the scenario's
        fault scaling — use a healthy cell for false-alarm accounting).
    counter:
        Counter the detector monitors.
    indicator:
        ``"mean"`` or ``"variance"`` Hölder moment.
    detector:
        Detector configuration (consumed by the Hölder family).
    detector_name:
        Which registered detector family scores the cell's runs (see
        :mod:`repro.analysis.detector_registry`); ``"holder"`` is the
        legacy default and keeps alarms bit-identical to pre-registry
        campaigns.
    holder_engine:
        Which registered :class:`~repro.core.engines.HolderEngine`
        computes Hölder trajectories for the Hölder detector family.
        Full-window estimates are identical across engines (protocol
        contract), so payloads are bit-identical whichever is selected.
    collect_scores:
        Record per-run peak decision statistics (healthy vs pre-crash)
        for scoreboard ROC sweeps.  Observation-only — alarm times are
        identical with it on or off.
    max_run_seconds:
        Simulation budget per run.
    engine:
        Simulation core for the cell's runs: ``"object"`` (one
        :class:`~repro.memsim.machine.Machine` per run through the
        discrete-event kernel) or ``"vector"`` (the whole cell advanced
        per tick by :class:`~repro.memsim.fleet_vec.VectorFleet`; the
        fleet is presimulated once and workers only analyse).  Detector
        plumbing, journaling and aggregation are engine-agnostic.
    """

    name: str
    scenario: str = "stress"
    profile: str = "nt4"
    n_runs: int = 3
    base_seed: int = 0
    fault_factor: float = 1.0
    counter: str = "AvailableBytes"
    indicator: str = "mean"
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    detector_name: str = "holder"
    holder_engine: str = "batch"
    collect_scores: bool = True
    max_run_seconds: float = 80_000.0
    engine: str = "object"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("spec name must be non-empty")
        check_choice(self.scenario, name="scenario", choices=SCENARIO_NAMES)
        check_choice(self.profile, name="profile", choices=("nt4", "w2k"))
        check_positive_int(self.n_runs, name="n_runs")
        check_choice(self.indicator, name="indicator", choices=("mean", "variance"))
        check_choice(self.detector_name, name="detector_name",
                     choices=detector_names())
        check_choice(self.holder_engine, name="holder_engine",
                     choices=holder_engine_names())
        check_positive(self.max_run_seconds, name="max_run_seconds")
        check_choice(self.engine, name="engine", choices=FLEET_ENGINES)
        if self.fault_factor < 0:
            raise ValidationError("fault_factor must be non-negative")


@dataclass(frozen=True)
class RunRecord:
    """Per-run outcome within a cell.

    ``detector`` names the registry family that scored the run;
    ``peak_healthy``/``peak_precrash`` are its peak decision statistics
    over the run's healthy and pre-crash segments (None when score
    collection was off, the segment was empty, or the record predates
    the scoreboard — the defaults keep v1 journals and results loadable).
    """

    seed: int
    crashed: bool
    crash_time: Optional[float]
    crash_reason: Optional[str]
    alarm_time: Optional[float]
    lead_time: Optional[float]
    duration: float
    detector: str = "holder"
    peak_healthy: Optional[float] = None
    peak_precrash: Optional[float] = None


@dataclass(frozen=True)
class CellResult:
    """A cell's runs plus detection aggregates.

    ``outcome`` is only present when the cell produced at least one
    crash (healthy cells have nothing to score leads against); healthy
    cells report ``false_alarms`` instead.
    """

    spec: ExperimentSpec
    runs: List[RunRecord]
    outcome: Optional[DetectionOutcome]
    false_alarms: int

    @property
    def n_crashed(self) -> int:
        """Number of runs that crashed."""
        return sum(1 for r in self.runs if r.crashed)

    @property
    def median_lead(self) -> float:
        """Median lead over detected crashes (NaN when none).

        Zero-lead detections (alarm at the crash instant) count: the
        detector *did* fire, it just bought no time, and dropping them
        would bias the median optimistic.
        """
        leads = [r.lead_time for r in self.runs
                 if r.lead_time is not None and r.lead_time >= 0]
        return float(np.median(leads)) if leads else float("nan")


def _execute_run(spec: ExperimentSpec, run_index: int,
                 presimulated=None) -> RunRecord:
    """Simulate and analyse one seeded run of a cell.

    The single source of truth for per-run work: both the sequential
    loop and the process pool call exactly this, with the seed derived
    deterministically from (``base_seed``, ``run_index``) — which is
    what makes ``workers=N`` output bit-identical to ``workers=1``.

    Vector-engine cells pass the host's presimulated
    :class:`~repro.memsim.machine.RunResult` as ``presimulated`` (the
    fleet was advanced as one batch in the parent); the unit then only
    analyses.  Counter-based per-host seeding makes the attached result
    identical however the pending set was batched, so journal resume
    and retries stay bit-exact.
    """
    seed = spec.base_seed + run_index
    with _obs.span("cell-run", cell=spec.name, run_index=run_index, seed=seed,
                   detector=spec.detector_name):
        if presimulated is not None:
            result = presimulated
        else:
            machine = _build(spec, seed)
            result = machine.run()

        alarm_time: Optional[float] = None
        peak_healthy: Optional[float] = None
        peak_precrash: Optional[float] = None
        try:
            evaluation = evaluate_detector(
                spec.detector_name, result.bundle, spec,
                collect_scores=spec.collect_scores,
            )
            alarm_time = evaluation.alarm_time
            peak_healthy = evaluation.peak_healthy
            peak_precrash = evaluation.peak_precrash
        except (AnalysisError, ValidationError) as exc:
            # Expected on too-short runs or degenerate counters; anything
            # else (a real bug) must propagate, especially off a worker.
            alarm_time = None
            _obs.counter("campaign.analysis_failures").inc()
            _log.warning("counter analysis failed; scoring run as no-alarm",
                         cell=spec.name, seed=seed,
                         detector=spec.detector_name,
                         error_type=type(exc).__name__, error=str(exc))

    lead = None
    if alarm_time is not None and result.crash_time is not None:
        lead = result.crash_time - alarm_time
    record = RunRecord(
        seed=seed,
        crashed=result.crashed,
        crash_time=result.crash_time,
        crash_reason=result.crash_reason,
        alarm_time=alarm_time,
        lead_time=lead,
        duration=result.duration,
        detector=spec.detector_name,
        peak_healthy=peak_healthy,
        peak_precrash=peak_precrash,
    )
    _obs.counter("campaign.runs_completed").inc()
    _obs.counter(f"campaign.detector.{spec.detector_name}.runs").inc()
    if alarm_time is not None:
        _obs.counter(f"campaign.detector.{spec.detector_name}.alarms").inc()
    _log.info("run finished", cell=spec.name,
              run=f"{run_index + 1}/{spec.n_runs}",
              seed=seed, crashed=result.crashed,
              alarm_time=alarm_time if alarm_time is not None else "none",
              lead_time=lead if lead is not None else "none")
    return record


def _aggregate_cell(spec: ExperimentSpec, records: List[RunRecord]) -> CellResult:
    """Fold a cell's run records into its :class:`CellResult`."""
    crashed = [r for r in records if r.crashed]
    if crashed:
        outcome = score_detections(
            [r.alarm_time for r in crashed],
            [r.crash_time for r in crashed],
            min_lead=60.0, max_lead_fraction=0.95,
        )
    else:
        outcome = None
    false_alarms = sum(
        1 for r in records if not r.crashed and r.alarm_time is not None
    )
    _log.info("cell finished", cell=spec.name, crashed=len(crashed),
              false_alarms=false_alarms)
    return CellResult(spec=spec, runs=records, outcome=outcome,
                      false_alarms=false_alarms)


def _campaign_unit(unit) -> RunRecord:
    """Pool entry point: one (spec, run_index[, presimulated]) item."""
    spec, run_index, *rest = unit
    return _execute_run(spec, run_index,
                        presimulated=rest[0] if rest else None)


def _presimulate_cell(spec: ExperimentSpec,
                      run_indices: Sequence[int]) -> Dict[int, "RunResult"]:
    """Advance one vector-engine cell's pending hosts as a single fleet.

    Returns run_index -> RunResult.  Because every variate is a pure
    function of ``(base_seed + run_index, stream, tick)``, the subset of
    hosts simulated together is irrelevant: resuming a half-journaled
    campaign presimulates only the missing hosts yet reproduces exactly
    what a full-fleet run would have given them.
    """
    from ..memsim.fleet_vec import VectorFleet
    from ..memsim.scenarios import scenario_batch_job, scenario_config

    seeds = [spec.base_seed + i for i in run_indices]
    if spec.fault_factor == 0.0:
        from ..memsim.config import FaultConfig

        config = scenario_config(
            spec.scenario, seed=spec.base_seed, profile=spec.profile,
            max_run_seconds=spec.max_run_seconds,
            config_overrides={"faults": FaultConfig(
                heap_leak_fraction=0.0, pool_leak_rate=0.0,
                fragmentation_rate=0.0,
            )},
        )
    else:
        config = scenario_config(
            spec.scenario, seed=spec.base_seed, profile=spec.profile,
            max_run_seconds=spec.max_run_seconds,
            fault_factor=spec.fault_factor,
        )
    with _obs.span("cell-presimulate", cell=spec.name, hosts=len(seeds),
                   engine=spec.engine):
        fleet = VectorFleet(config, seeds=seeds,
                            batch_job=scenario_batch_job(spec.scenario))
        results = fleet.run()
    return dict(zip(run_indices, results))


def run_cell(spec: ExperimentSpec) -> CellResult:
    """Execute one cell: fleet, analysis, aggregation."""
    _log.info("cell starting", cell=spec.name, scenario=spec.scenario,
              profile=spec.profile, n_runs=spec.n_runs, engine=spec.engine)
    if spec.engine == "vector":
        presim = _presimulate_cell(spec, range(spec.n_runs))
        records = [_execute_run(spec, i, presimulated=presim[i])
                   for i in range(spec.n_runs)]
    else:
        records = [_execute_run(spec, i) for i in range(spec.n_runs)]
    return _aggregate_cell(spec, records)


def cells_payload(results: Dict[str, CellResult]) -> Dict[str, dict]:
    """JSON-able per-cell summary, rich enough to rebuild detection-quality
    dashboards from a run manifest alone (no trace or results file needed).

    This is the shape ``cmd_campaign`` stores under ``outcome.cells`` and
    :func:`repro.obs.dashboard.render_campaign_dashboard` consumes.
    """
    payload: Dict[str, dict] = {}
    for name, cell in results.items():
        median = cell.median_lead
        payload[name] = {
            "scenario": cell.spec.scenario,
            "profile": cell.spec.profile,
            "fault_factor": cell.spec.fault_factor,
            "detector": cell.spec.detector_name,
            "runs": [
                {
                    "seed": r.seed,
                    "crashed": r.crashed,
                    "crash_time": r.crash_time,
                    "alarm_time": r.alarm_time,
                    "lead_time": r.lead_time,
                    "duration": r.duration,
                    "peak_healthy": r.peak_healthy,
                    "peak_precrash": r.peak_precrash,
                }
                for r in cell.runs
            ],
            "crashed": cell.n_crashed,
            "detected": cell.outcome.n_detected if cell.outcome else 0,
            "premature": cell.outcome.n_premature if cell.outcome else 0,
            "missed": cell.outcome.n_missed if cell.outcome else 0,
            "median_lead": None if np.isnan(median) else median,
            "false_alarms": cell.false_alarms,
            "lead_times": list(cell.outcome.lead_times) if cell.outcome else [],
        }
    return payload


def detector_grid(specs: Sequence[ExperimentSpec],
                  detectors: Sequence[str]) -> List[ExperimentSpec]:
    """Expand scenario cells × detector names into a tournament grid.

    Every cell in ``specs`` is replicated once per detector name as
    ``<cell>@<detector>``; seeds, scenarios and budgets are untouched,
    so each detector family scores the *same* simulated runs and the
    scoreboard comparison is apples-to-apples.
    """
    if not specs:
        raise ValidationError("detector grid needs at least one spec")
    if not detectors:
        raise ValidationError("detector grid needs at least one detector name")
    if len(set(detectors)) != len(detectors):
        raise ValidationError(f"duplicate detector names: {list(detectors)}")
    grid: List[ExperimentSpec] = []
    for spec in specs:
        for name in detectors:
            grid.append(replace(spec, name=f"{spec.name}@{name}",
                                detector_name=name))
    return grid


@dataclass(frozen=True)
class MissingUnit:
    """One (cell, run) unit that failed permanently during execution."""

    cell: str
    run_index: int
    error: str


@dataclass
class CampaignOutcome:
    """What a resilient campaign execution produced.

    ``status`` is ``"complete"`` when every (cell, run) unit finished,
    ``"incomplete"`` when some failed permanently — in which case
    ``missing`` names each one (and ``missing_cells`` the affected
    cells), ``results`` aggregates whatever *did* finish, and a
    ``--resume`` against the same journal will execute exactly the
    missing units.
    """

    results: Dict[str, CellResult]
    status: str
    missing: List[MissingUnit] = field(default_factory=list)
    executed_units: int = 0
    resumed_units: int = 0
    # Newest journal heartbeat recovered on resume (wall-clock epoch
    # seconds), None for fresh runs or pre-heartbeat journals.
    resumed_last_progress_at: Optional[float] = None

    @property
    def complete(self) -> bool:
        """True when no unit is missing."""
        return self.status == "complete"

    @property
    def missing_cells(self) -> List[str]:
        """Names of cells with at least one missing run, in spec order."""
        seen: List[str] = []
        for unit in self.missing:
            if unit.cell not in seen:
                seen.append(unit.cell)
        return seen


def campaign_fingerprint(specs: List[ExperimentSpec]) -> str:
    """Fingerprint of a campaign's full configuration (specs + seeds).

    Keys the checkpoint journal: a journal written by one campaign can
    never be resumed against a different one.
    """
    return config_fingerprint([asdict(spec) for spec in specs])


def unit_key(spec: ExperimentSpec, run_index: int) -> str:
    """Journal key of one (cell, run) work unit."""
    return f"{spec.name}#{run_index}"


def _validate_specs(specs: List[ExperimentSpec]) -> None:
    if not specs:
        raise ValidationError("campaign needs at least one spec")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValidationError(f"duplicate spec names in campaign: {names}")


def execute_campaign(
    specs: List[ExperimentSpec],
    *,
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff_base: float = 0.5,
    backoff_cap: float = 30.0,
    journal: Optional[str | os.PathLike] = None,
    resume: bool = False,
    chaos: Optional[ChaosSpec] = None,
    allow_partial: bool = False,
    status=None,
    timeline=None,
) -> CampaignOutcome:
    """Run a campaign with crash tolerance; returns a
    :class:`CampaignOutcome`.

    The campaign's (cell, run) work units execute through
    :func:`repro.perf.pool.resilient_map`: ``workers > 1`` fans them
    across a process pool, each unit seeded from its (``base_seed``,
    ``run_index``) alone and reassembled in submission order, so results
    are bit-identical to sequential.  ``timeout`` bounds each unit's
    wall clock (parallel mode only) and ``retries`` re-runs units whose
    worker died, hung, or raised a transient :class:`ChaosError`, with
    exponential backoff — a retried unit recomputes the identical
    record, so resilience never perturbs results.

    ``journal`` names an append-only checkpoint file
    (:class:`~repro.analysis.checkpoint.CampaignJournal`): every
    completed unit is journaled (fsynced) the moment it finishes, keyed
    by a fingerprint of the campaign configuration.  ``resume=True``
    loads it first and executes only the units it is missing; because
    units are deterministic, an interrupted-then-resumed campaign's
    outcome is bit-identical to an uninterrupted run's.

    ``chaos`` injects faults (see :class:`repro.testing.chaos.ChaosSpec`)
    — the dev/test harness proving all of the above.

    Units that fail permanently (budget exhausted) raise
    :class:`~repro.exceptions.ExecutionError` unless ``allow_partial``
    is set, in which case the outcome comes back ``"incomplete"`` with
    the missing units listed and every completed run aggregated.

    ``status`` (duck-typed, e.g. a
    :class:`~repro.obs.statusd.StatusBoard`) receives live progress —
    ``begin``/``unit_finished``/``unit_failed``/``finish`` — for the
    ``/status`` endpoint.  ``timeline`` (duck-typed, e.g. a
    :class:`~repro.obs.timeline.TimelineRecorder`) receives
    campaign-begin/campaign-end annotations bracketing the execution;
    its periodic frames run on its own thread.  Both observe execution
    and never feed back into it, so a run with either attached stays
    bit-identical to one without.  The whole execution runs under a
    cross-process trace (:func:`repro.obs.ops.trace_scope`); worker
    telemetry merges back tagged with the campaign's trace id.
    """
    _validate_specs(specs)
    workers = resolve_workers(workers)
    units = [(spec, i) for spec in specs for i in range(spec.n_runs)]
    keys = [unit_key(spec, i) for spec, i in units]
    fingerprint = campaign_fingerprint(specs)

    completed: Dict[str, RunRecord] = {}
    last_progress_at: Optional[float] = None
    if resume:
        if journal is None:
            raise ValidationError("resume=True requires a journal path")
        if os.path.exists(journal) and os.path.getsize(journal) > 0:
            state = CampaignJournal.read_state(
                journal, fingerprint=fingerprint)
            wanted = set(keys)
            completed = {key: RunRecord(**payload)
                         for key, payload in state.units.items()
                         if key in wanted}
            last_progress_at = state.last_progress_at
            _obs.counter("campaign.units_resumed").inc(len(completed))

    pending = [(unit, key) for unit, key in zip(units, keys)
               if key not in completed]
    _log.info("campaign starting", cells=len(specs), units=len(units),
              resumed=len(completed), pending=len(pending), workers=workers,
              fingerprint=fingerprint,
              last_progress_at=(last_progress_at
                                if last_progress_at is not None else "none"))

    if status is not None:
        status.begin(
            total_units=len(units),
            cells={spec.name: spec.n_runs for spec in specs},
            resumed=len(completed),
            fingerprint=fingerprint,
            workers=workers,
            journal=None if journal is None else os.fspath(journal),
            resumed_last_progress_at=last_progress_at,
        )
    if timeline is not None:
        timeline.annotate(
            "campaign-begin", cells=len(specs), units=len(units),
            resumed=len(completed), pending=len(pending), workers=workers,
            fingerprint=fingerprint)

    outcomes = []
    if pending:
        pending_units = [unit for unit, _ in pending]
        pending_keys = [key for _, key in pending]
        # Vector-engine cells: advance each cell's pending hosts as one
        # batched fleet here in the parent, then attach the per-host
        # result to its unit — workers only analyse.  Counter-based
        # seeding makes each host's result independent of which other
        # hosts were batched with it, so resume/retry stay bit-exact.
        if any(spec.engine == "vector" for spec in specs):
            by_cell: Dict[str, List[int]] = {}
            for spec, i in pending_units:
                if spec.engine == "vector":
                    by_cell.setdefault(spec.name, []).append(i)
            presim = {
                spec.name: _presimulate_cell(spec, by_cell[spec.name])
                for spec in specs if spec.name in by_cell
            }
            pending_units = [
                (spec, i, presim[spec.name][i]) if spec.name in presim
                else (spec, i)
                for spec, i in pending_units
            ]
        journal_handle = (CampaignJournal(journal, fingerprint=fingerprint)
                          if journal is not None else None)

        def on_result(index: int, record: RunRecord) -> None:
            key = pending_keys[index]
            completed[key] = record
            if journal_handle is not None:
                journal_handle.record_unit(key, asdict(record))
            if status is not None:
                status.unit_finished(
                    cell=pending_units[index][0].name,
                    detector=pending_units[index][0].detector_name,
                    alarmed=record.alarm_time is not None,
                )

        pre_unit = (partial(chaos_pre_unit, chaos)
                    if chaos is not None else None)
        trace = _ops.current_trace() or _ops.new_trace("campaign")
        try:
            with _ops.trace_scope(trace), \
                    _obs.span("campaign-pool", cells=len(specs),
                              units=len(pending_units), workers=workers,
                              trace_id=trace.trace_id):
                outcomes = resilient_map(
                    _campaign_unit, pending_units, workers=workers,
                    label="campaign-worker", timeout=timeout,
                    retries=retries, backoff_base=backoff_base,
                    backoff_cap=backoff_cap, retry_exceptions=(ChaosError,),
                    pre_unit=pre_unit, on_result=on_result,
                )
        finally:
            if journal_handle is not None:
                journal_handle.close()

        missing = [
            MissingUnit(cell=pending_units[o.index][0].name,
                        run_index=pending_units[o.index][1],
                        error=o.error or "unknown failure")
            for o in outcomes if not o.ok
        ]
        if status is not None:
            for unit in missing:
                status.unit_failed(cell=unit.cell, error=unit.error)
    else:
        missing = []

    results: Dict[str, CellResult] = {}
    for spec in specs:
        records = [completed[unit_key(spec, i)] for i in range(spec.n_runs)
                   if unit_key(spec, i) in completed]
        results[spec.name] = _aggregate_cell(spec, records)

    outcome = CampaignOutcome(
        results=results,
        status="complete" if not missing else "incomplete",
        missing=missing,
        executed_units=sum(1 for o in outcomes if o.ok),
        resumed_units=len(units) - len(pending),
        resumed_last_progress_at=last_progress_at,
    )
    if status is not None:
        status.finish(outcome.status, missing_units=len(missing))
    if timeline is not None:
        timeline.annotate(
            "campaign-end", status=outcome.status,
            executed=outcome.executed_units, missing=len(missing))
    if missing:
        _obs.counter("campaign.units_missing").inc(len(missing))
        _log.warning("campaign incomplete", missing=len(missing),
                     cells=",".join(outcome.missing_cells))
        if not allow_partial:
            detail = "; ".join(
                f"{u.cell}#{u.run_index}: {u.error}" for u in missing[:5])
            raise ExecutionError(
                f"campaign incomplete: {len(missing)} unit(s) failed "
                f"permanently across cell(s) {outcome.missing_cells} "
                f"({detail})"
                + (f"; completed units are journaled in {journal} — fix "
                   f"the cause and resume" if journal is not None else "")
            )
    return outcome


def run_campaign(
    specs: List[ExperimentSpec],
    *,
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    journal: Optional[str | os.PathLike] = None,
    resume: bool = False,
) -> Dict[str, CellResult]:
    """Run every cell; returns results keyed by spec name.

    ``workers > 1`` fans the campaign's (cell, run) work units across a
    process pool: every unit is seeded from its (``base_seed``,
    ``run_index``) alone, results are reassembled in submission order
    and aggregated by the same code as the sequential loop, so the
    returned :class:`CellResult` values — and the
    :func:`cells_payload` built from them — are bit-identical to a
    ``workers=1`` run.  Per-worker telemetry (counters, spans, events)
    is merged back into the calling session.

    ``timeout``/``retries``/``journal``/``resume`` are the resilience
    knobs, passed through to :func:`execute_campaign` (which is the
    richer API: partial outcomes, chaos injection).  A permanent unit
    failure raises :class:`~repro.exceptions.ExecutionError` here.
    """
    return execute_campaign(
        specs, workers=workers, timeout=timeout, retries=retries,
        journal=journal, resume=resume, allow_partial=False,
    ).results


def _build(spec: ExperimentSpec, seed: int):
    if spec.fault_factor == 0.0:
        # Scenario scaling cannot reach exactly zero (scaled() requires a
        # positive factor); build with explicitly disabled faults.
        from ..memsim.config import FaultConfig

        machine = build_scenario(
            spec.scenario, seed=seed, profile=spec.profile,
            max_run_seconds=spec.max_run_seconds,
            config_overrides={"faults": FaultConfig(
                heap_leak_fraction=0.0, pool_leak_rate=0.0,
                fragmentation_rate=0.0,
            )},
        )
    else:
        machine = build_scenario(
            spec.scenario, seed=seed, profile=spec.profile,
            max_run_seconds=spec.max_run_seconds,
            fault_factor=spec.fault_factor,
        )
    return machine
