"""Detector tournament scoreboard: ROC/lead-time ranking over a campaign.

A grid campaign (see :func:`repro.analysis.campaign.detector_grid`) runs
every detector family over the same simulated scenario cells.  This
module folds the per-run records of such a campaign into one versioned
JSON artifact — schema ``repro.scoreboard/1`` — holding, per (cell,
detector) and pooled per detector:

* the ROC curve and AUC, swept from the stored per-run peak decision
  statistics (pre-crash peaks are positives, healthy-segment peaks are
  negatives) via :func:`repro.stats.roc.roc_curve` — no re-simulation;
* lead-time quantiles (p50/p90) over detected crashes;
* detection / premature / missed counts and rates;
* false alarms and the false-alarm rate per hour of healthy runtime.

Construction is pure post-processing over records the campaign already
produced: building (or skipping) a scoreboard cannot perturb a single
alarm, which is enforced in tests.  The artifact is rebuildable from
saved campaign results or run manifests alone (``repro scoreboard``).
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..exceptions import TraceError
from ..obs import session as _obs
from ..obs.atomic import atomic_write_json
from ..stats.roc import auc, roc_curve
from .campaign import CellResult, cells_payload

__all__ = [
    "SCOREBOARD_SCHEMA",
    "build_scoreboard",
    "scoreboard_from_results",
    "save_scoreboard",
    "load_scoreboard",
    "scoreboard_table",
    "publish_scoreboard",
]

SCOREBOARD_SCHEMA = "repro.scoreboard/1"


def _quantile(values: List[float], q: float) -> Optional[float]:
    if not values:
        return None
    return float(np.percentile(np.asarray(values, dtype=float), q))


def _rate(part: int, whole: int) -> Optional[float]:
    """part/whole, or None when the denominator is empty (no evidence)."""
    return part / whole if whole else None


def _roc_block(pos: List[float], neg: List[float]) -> Tuple[Optional[dict], Optional[float]]:
    """ROC + AUC from pooled peak statistics; None when either side is
    empty (a healthy-only or crash-only pool has no sweep to draw)."""
    if not pos or not neg:
        return None, None
    fpr, tpr = roc_curve(pos, neg)
    return ({"fpr": [float(v) for v in fpr],
             "tpr": [float(v) for v in tpr]},
            auc(fpr, tpr))


def build_scoreboard(cells: Mapping[str, Mapping]) -> dict:
    """Fold a campaign cells payload into a ``repro.scoreboard/1`` dict.

    ``cells`` is the shape :func:`repro.analysis.campaign.cells_payload`
    produces (and run manifests store under ``outcome.cells``).  Legacy
    payloads without per-run peak statistics still score — their ROC and
    AUC come back None and their runs map to the default Hölder family.
    """
    if not cells:
        raise TraceError("scoreboard needs at least one campaign cell")
    cell_entries: Dict[str, dict] = {}
    for name, cell in cells.items():
        runs = list(cell.get("runs", []))
        detector = str(cell.get("detector") or "holder")
        leads = [float(v) for v in cell.get("lead_times", [])]
        pos = [float(r["peak_precrash"]) for r in runs
               if r.get("crashed") and r.get("peak_precrash") is not None]
        neg = [float(r["peak_healthy"]) for r in runs
               if r.get("peak_healthy") is not None]
        crashed = int(cell.get("crashed", 0))
        detected = int(cell.get("detected", 0))
        healthy_seconds = sum(float(r.get("duration", 0.0)) for r in runs
                              if not r.get("crashed"))
        false_alarms = int(cell.get("false_alarms", 0))
        roc, area = _roc_block(pos, neg)
        cell_entries[name] = {
            "detector": detector,
            "scenario": cell.get("scenario"),
            "profile": cell.get("profile"),
            "fault_factor": cell.get("fault_factor"),
            "n_runs": len(runs),
            "crashed": crashed,
            "detected": detected,
            "premature": int(cell.get("premature", 0)),
            "missed": int(cell.get("missed", 0)),
            "detection_rate": _rate(detected, crashed),
            "lead_p50": _quantile(leads, 50.0),
            "lead_p90": _quantile(leads, 90.0),
            "false_alarms": false_alarms,
            "healthy_seconds": healthy_seconds,
            "false_alarms_per_hour": (
                false_alarms / healthy_seconds * 3600.0
                if healthy_seconds > 0 else None),
            "n_pos": len(pos),
            "n_neg": len(neg),
            "roc": roc,
            "auc": area,
        }

    detectors: Dict[str, dict] = {}
    for name, entry in sorted(cell_entries.items()):
        det = detectors.setdefault(entry["detector"], {
            "cells": [], "n_runs": 0, "crashed": 0, "detected": 0,
            "premature": 0, "missed": 0, "false_alarms": 0,
            "healthy_seconds": 0.0, "_leads": [], "_pos": [], "_neg": [],
        })
        det["cells"].append(name)
        for key in ("n_runs", "crashed", "detected", "premature", "missed",
                    "false_alarms"):
            det[key] += entry[key]
        det["healthy_seconds"] += entry["healthy_seconds"]
        det["_leads"].extend(float(v) for v in cells[name].get("lead_times", []))
        runs = cells[name].get("runs", [])
        det["_pos"].extend(float(r["peak_precrash"]) for r in runs
                           if r.get("crashed")
                           and r.get("peak_precrash") is not None)
        det["_neg"].extend(float(r["peak_healthy"]) for r in runs
                           if r.get("peak_healthy") is not None)
    for det in detectors.values():
        leads = det.pop("_leads")
        pos = det.pop("_pos")
        neg = det.pop("_neg")
        roc, area = _roc_block(pos, neg)
        det["detection_rate"] = _rate(det["detected"], det["crashed"])
        det["lead_p50"] = _quantile(leads, 50.0)
        det["lead_p90"] = _quantile(leads, 90.0)
        det["false_alarms_per_hour"] = (
            det["false_alarms"] / det["healthy_seconds"] * 3600.0
            if det["healthy_seconds"] > 0 else None)
        det["n_pos"] = len(pos)
        det["n_neg"] = len(neg)
        det["roc"] = roc
        det["auc"] = area

    return {
        "schema": SCOREBOARD_SCHEMA,
        "n_cells": len(cell_entries),
        "cells": {name: cell_entries[name] for name in sorted(cell_entries)},
        "detectors": {name: detectors[name] for name in sorted(detectors)},
    }


def scoreboard_from_results(results: Mapping[str, CellResult]) -> dict:
    """Build the scoreboard straight from in-memory campaign results."""
    return build_scoreboard(cells_payload(dict(results)))


def save_scoreboard(scoreboard: Mapping, path: str | os.PathLike) -> None:
    """Write a scoreboard artifact to JSON (atomically)."""
    if scoreboard.get("schema") != SCOREBOARD_SCHEMA:
        raise TraceError(
            f"not a scoreboard payload (schema {scoreboard.get('schema')!r})")
    atomic_write_json(path, dict(scoreboard))


def load_scoreboard(path: str | os.PathLike) -> dict:
    """Read a scoreboard artifact written by :func:`save_scoreboard`."""
    with open(path, "r") as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != SCOREBOARD_SCHEMA:
        raise TraceError(
            f"unsupported scoreboard schema {schema!r} "
            f"(expected {SCOREBOARD_SCHEMA})"
        )
    return payload


def _cell_value(value: Optional[float]) -> object:
    """Table cell: '—' for undefined numerics (no-evidence, not zero)."""
    if value is None:
        return "—"
    if isinstance(value, float) and math.isnan(value):
        return "—"
    return value


def scoreboard_table(scoreboard: Mapping) -> List[List[object]]:
    """League-table rows (one per detector) for
    :func:`repro.report.render_table`.

    Columns: detector, cells, runs, crashed, detected, rate, premature,
    missed, lead p50, lead p90, false alarms/h, AUC.  Undefined figures
    render as "—" rather than a misleading 0.
    """
    rows: List[List[object]] = []
    for name, det in scoreboard.get("detectors", {}).items():
        rows.append([
            name,
            len(det.get("cells", [])),
            det.get("n_runs", 0),
            det.get("crashed", 0),
            det.get("detected", 0),
            _cell_value(det.get("detection_rate")),
            det.get("premature", 0),
            det.get("missed", 0),
            _cell_value(det.get("lead_p50")),
            _cell_value(det.get("lead_p90")),
            _cell_value(det.get("false_alarms_per_hour")),
            _cell_value(det.get("auc")),
        ])
    return rows


def publish_scoreboard(scoreboard: Mapping) -> None:
    """Mirror the per-detector headline figures into the live metrics
    registry as ``scoreboard.<detector>.*`` gauges.

    With telemetry enabled they flow out through every existing surface —
    the Prometheus/OpenMetrics exporter, the ``/metrics`` endpoint and
    the run manifest; without a session this is a no-op.  Observation
    only, like the rest of the scoreboard.
    """
    if not _obs.telemetry_enabled():
        return
    for name, det in scoreboard.get("detectors", {}).items():
        for key in ("auc", "detection_rate", "lead_p50", "lead_p90",
                    "false_alarms_per_hour"):
            value = det.get(key)
            if value is not None:
                _obs.gauge(f"scoreboard.{name}.{key}").set(float(value))
        _obs.gauge(f"scoreboard.{name}.false_alarms").set(
            float(det.get("false_alarms", 0)))
