"""Configuration objects for the memory-subsystem simulator.

A :class:`MachineConfig` bundles the hardware/OS parameters, the workload
shape and the aging-fault intensities for one simulated host.  Two named
profiles mirror the paper's two testbeds:

* ``nt4`` — a late-90s server: 128 MiB RAM, modest paging file,
  aggressive working-set trimming;
* ``w2k`` — a 2000-era server: 256 MiB RAM, larger paging file, gentler
  trimming.

The defaults are tuned so that a stress run crashes in simulated hours
(thousands of sampling intervals), matching the time-scale structure of
the original experiments while staying laptop-fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from .._validation import (
    check_in_range,
    check_positive,
    check_positive_int,
)

PAGE_SIZE = 4096  # bytes per page, as on x86 NT


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the synthetic stress workload.

    The workload is a superposition of heavy-tailed ON/OFF sources (the
    classical construction that yields long-range-dependent aggregate
    demand) plus a session layer that churns process working sets.

    Attributes
    ----------
    n_sources:
        Number of independent ON/OFF sources.
    pareto_shape:
        Tail index of ON/OFF durations; values in (1, 2) give LRD with
        ``H = (3 - shape) / 2``.
    mean_on, mean_off:
        Mean ON and OFF durations, seconds.
    on_rate_pages:
        Page-allocation rate of a source while ON (pages/second).
    hold_time:
        Mean residence time of burst allocations before release, seconds.
    session_rate:
        Poisson arrival rate of sessions (new worker processes), per
        second.
    session_pages_mean:
        Mean working-set size of a session, pages (log-normal).
    session_lifetime:
        Mean session lifetime, seconds (exponential).
    """

    n_sources: int = 16
    pareto_shape: float = 1.4
    mean_on: float = 20.0
    mean_off: float = 40.0
    on_rate_pages: float = 48.0
    hold_time: float = 30.0
    session_rate: float = 0.05
    session_pages_mean: float = 560.0
    session_lifetime: float = 300.0

    def __post_init__(self) -> None:
        check_positive_int(self.n_sources, name="n_sources")
        check_in_range(self.pareto_shape, name="pareto_shape", low=1.0, high=2.0,
                       inclusive_low=False, inclusive_high=False)
        for name in ("mean_on", "mean_off", "on_rate_pages", "hold_time",
                     "session_rate", "session_pages_mean", "session_lifetime"):
            check_positive(getattr(self, name), name=name)

    @property
    def theoretical_hurst(self) -> float:
        """H of the aggregate ON/OFF demand: (3 - shape) / 2 (Taqqu)."""
        return (3.0 - self.pareto_shape) / 2.0


@dataclass(frozen=True)
class FaultConfig:
    """Aging-fault intensities.

    Attributes
    ----------
    heap_leak_fraction:
        Fraction of each released burst that is leaked (never freed) —
        models unreleased heap allocations in aged server processes.
    pool_leak_rate:
        Kernel nonpaged-pool leak rate in bytes/second — models handle
        and object leaks in drivers/services.
    pool_leak_burst_cv:
        Coefficient of variation of individual pool-leak increments
        (leaks arrive in bursts, not a smooth drip).
    fragmentation_rate:
        Expected bytes of commit capacity permanently lost per byte
        allocated (allocator fragmentation / address-space pollution).
        The default 1e-4 loses a few tens of MB over a day-scale stress
        run.
    fault_onset_time:
        Simulated seconds before the aging faults activate.  A freshly
        booted (or rejuvenated) system runs healthy for a while before
        state decay sets in; this also gives detectors an honest healthy
        calibration window, as in the paper's protocol.
    """

    heap_leak_fraction: float = 0.008
    pool_leak_rate: float = 1000.0
    pool_leak_burst_cv: float = 1.5
    fragmentation_rate: float = 1e-4
    fault_onset_time: float = 1800.0

    def __post_init__(self) -> None:
        check_in_range(self.heap_leak_fraction, name="heap_leak_fraction", low=0.0, high=0.5)
        check_in_range(self.pool_leak_rate, name="pool_leak_rate", low=0.0, high=1e9)
        check_positive(self.pool_leak_burst_cv, name="pool_leak_burst_cv")
        check_in_range(self.fragmentation_rate, name="fragmentation_rate", low=0.0, high=0.01)
        check_in_range(self.fault_onset_time, name="fault_onset_time", low=0.0, high=1e9)

    def scaled(self, factor: float) -> "FaultConfig":
        """Return a copy with every aging intensity multiplied by ``factor``."""
        check_positive(factor, name="factor")
        return FaultConfig(
            heap_leak_fraction=min(self.heap_leak_fraction * factor, 0.5),
            pool_leak_rate=self.pool_leak_rate * factor,
            pool_leak_burst_cv=self.pool_leak_burst_cv,
            fragmentation_rate=self.fragmentation_rate * factor,
            fault_onset_time=self.fault_onset_time,
        )


@dataclass(frozen=True)
class MachineConfig:
    """Full configuration of one simulated host.

    Attributes
    ----------
    ram_bytes:
        Physical memory size.
    pagefile_bytes:
        Backing-store size; the commit limit is ``ram + pagefile``.
    nonpaged_pool_bytes:
        Kernel nonpaged pool capacity (exhaustion crashes the host, as
        on real NT).
    trim_threshold:
        Fraction of RAM free below which the OS starts trimming working
        sets.
    thrash_threshold:
        Fraction of RAM free below which paging churn (thrashing)
        dynamics kick in.
    trim_aggressiveness:
        Fraction of trimmable pages reclaimed per trim pass.
    sampling_interval:
        Performance-counter sampling period, seconds.
    sample_drop_probability:
        Probability an individual counter sample is lost (real
        collectors drop samples under load).
    max_run_seconds:
        Hard stop for the simulation if no crash occurs.
    seed:
        Root RNG seed for the run.
    os_profile:
        Profile label carried into trace metadata.
    """

    ram_bytes: int = 128 * 1024 * 1024
    pagefile_bytes: int = 192 * 1024 * 1024
    nonpaged_pool_bytes: int = 48 * 1024 * 1024
    trim_threshold: float = 0.12
    thrash_threshold: float = 0.10
    trim_aggressiveness: float = 0.30
    sampling_interval: float = 1.0
    sample_drop_probability: float = 0.002
    max_run_seconds: float = 200_000.0
    seed: int = 0
    os_profile: str = "nt4"
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)

    def __post_init__(self) -> None:
        check_positive_int(self.ram_bytes, name="ram_bytes", minimum=PAGE_SIZE * 1024)
        check_positive_int(self.pagefile_bytes, name="pagefile_bytes", minimum=PAGE_SIZE)
        check_positive_int(self.nonpaged_pool_bytes, name="nonpaged_pool_bytes",
                           minimum=PAGE_SIZE)
        check_in_range(self.trim_threshold, name="trim_threshold", low=0.01, high=0.5)
        check_in_range(self.thrash_threshold, name="thrash_threshold", low=0.005, high=0.4)
        check_in_range(self.trim_aggressiveness, name="trim_aggressiveness", low=0.01, high=1.0)
        check_positive(self.sampling_interval, name="sampling_interval")
        check_in_range(self.sample_drop_probability, name="sample_drop_probability",
                       low=0.0, high=0.2)
        check_positive(self.max_run_seconds, name="max_run_seconds")

    def with_seed(self, seed: int) -> "MachineConfig":
        """A copy of this configuration with only the seed replaced.

        The canonical way to derive per-host fleet configs: unlike a
        ``MachineConfig(**{**cfg.__dict__, ...})`` rebuild it survives
        ``slots=True`` dataclasses (no ``__dict__``), keeps working if
        fields gain ``init=False``, and re-runs validation exactly once.
        """
        return replace(self, seed=seed)

    # -- named profiles ------------------------------------------------------

    @classmethod
    def nt4(cls, seed: int = 0, **overrides) -> "MachineConfig":
        """The NT-4.0-like testbed profile."""
        cfg = cls(seed=seed, os_profile="nt4")
        return replace(cfg, **overrides) if overrides else cfg

    @classmethod
    def w2k(cls, seed: int = 0, **overrides) -> "MachineConfig":
        """The Windows-2000-like testbed profile: more RAM, gentler trim."""
        cfg = cls(
            ram_bytes=256 * 1024 * 1024,
            pagefile_bytes=384 * 1024 * 1024,
            nonpaged_pool_bytes=96 * 1024 * 1024,
            trim_threshold=0.10,
            thrash_threshold=0.08,
            trim_aggressiveness=0.22,
            seed=seed,
            os_profile="w2k",
            faults=FaultConfig(
                heap_leak_fraction=0.016,
                pool_leak_rate=2600.0,
                pool_leak_burst_cv=1.5,
                fragmentation_rate=1e-4,
                fault_onset_time=1800.0,
            ),
        )
        return replace(cfg, **overrides) if overrides else cfg

    @property
    def total_pages(self) -> int:
        """Physical page frames."""
        return self.ram_bytes // PAGE_SIZE

    @property
    def commit_limit_bytes(self) -> int:
        """RAM plus paging file: the hard ceiling on committed memory."""
        return self.ram_bytes + self.pagefile_bytes


OS_PROFILES: Dict[str, classmethod] = {
    "nt4": MachineConfig.nt4,
    "w2k": MachineConfig.w2k,
}
