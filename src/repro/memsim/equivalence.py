"""FleetEquivalence: the vector engine's oracle-agreement layer.

The object-model :class:`~repro.memsim.machine.Machine` is the oracle;
the vector engine must agree with it at two levels:

* **exact** — within the vector engine, host ``i`` of a batch is
  bit-identical to host ``i`` simulated alone (and to any worker
  sharding): :func:`check_batch_decomposition`.
* **statistical** — across engines, fleets of the same config produce
  crash-time samples from the same distribution (two-sample KS) with the
  same crash reasons and identical sample grids:
  :func:`fleet_equivalence_report` / :func:`check_cross_engine`.

The KS machinery is self-contained (no scipy in the dependency set):
:func:`ks_2samp` computes the two-sample statistic and the asymptotic
Kolmogorov p-value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import AnalysisError
from .config import MachineConfig
from .fleet_vec import VectorFleet
from .machine import RunResult, run_fleet

__all__ = [
    "ks_2samp",
    "check_batch_decomposition",
    "fleet_equivalence_report",
    "check_cross_engine",
    "EquivalenceReport",
]


def ks_2samp(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Two-sample Kolmogorov–Smirnov test.

    Returns ``(D, p)`` where ``D`` is the sup-distance between empirical
    CDFs and ``p`` the asymptotic two-sided p-value
    ``Q(sqrt(nm/(n+m)) * D)`` with Kolmogorov's series
    ``Q(x) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 x^2)``.
    """
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    n, m = a.size, b.size
    if n == 0 or m == 0:
        raise AnalysisError("ks_2samp requires non-empty samples")
    joint = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, joint, side="right") / n
    cdf_b = np.searchsorted(b, joint, side="right") / m
    d = float(np.max(np.abs(cdf_a - cdf_b)))
    en = np.sqrt(n * m / (n + m))
    x = (en + 0.12 + 0.11 / en) * d  # Stephens' small-sample correction
    if x < 1e-3:
        return d, 1.0
    terms = np.arange(1, 101)
    p = 2.0 * np.sum((-1.0) ** (terms - 1) * np.exp(-2.0 * (terms * x) ** 2))
    return d, float(min(max(p, 0.0), 1.0))


def check_batch_decomposition(
    config: MachineConfig,
    n_hosts: int,
    *,
    crash_grace: float = 120.0,
    dt: float = 1.0,
) -> None:
    """Assert host ``i`` of an ``n_hosts`` batch is bit-identical to host
    ``i`` simulated alone.  Raises :class:`AnalysisError` on mismatch."""
    batch = VectorFleet(config, n_hosts, crash_grace=crash_grace, dt=dt).run()
    for i in range(n_hosts):
        solo = VectorFleet(
            config, seeds=[config.seed + i], crash_grace=crash_grace, dt=dt,
        ).run()[0]
        ref = batch[i]
        if (solo.crashed != ref.crashed or solo.crash_time != ref.crash_time
                or solo.crash_reason != ref.crash_reason):
            raise AnalysisError(
                f"host {i}: batch crash ({ref.crash_time}, {ref.crash_reason}) "
                f"!= solo crash ({solo.crash_time}, {solo.crash_reason})")
        if sorted(solo.bundle.names) != sorted(ref.bundle.names):
            raise AnalysisError(f"host {i}: counter sets differ")
        for name in ref.bundle.names:
            rs, ss = ref.bundle[name], solo.bundle[name]
            if not (np.array_equal(rs.times, ss.times)
                    and np.array_equal(rs.values, ss.values)):
                raise AnalysisError(
                    f"host {i}: counter {name!r} not bit-identical between "
                    f"batch and solo simulation")


@dataclass(frozen=True)
class EquivalenceReport:
    """Cross-engine agreement summary for one configuration."""

    n_hosts: int
    object_crashes: int
    vector_crashes: int
    object_crash_times: Tuple[float, ...]
    vector_crash_times: Tuple[float, ...]
    ks_statistic: Optional[float]
    ks_pvalue: Optional[float]
    object_reasons: Tuple[str, ...]
    vector_reasons: Tuple[str, ...]

    @property
    def crash_fraction_gap(self) -> float:
        return abs(self.object_crashes - self.vector_crashes) / self.n_hosts


def _crash_profile(results: List[RunResult]) -> Tuple[List[float], List[str]]:
    times = [float(r.crash_time) for r in results if r.crashed]
    reasons = sorted({r.crash_reason for r in results if r.crashed})
    return times, reasons


def fleet_equivalence_report(
    config: MachineConfig,
    n_hosts: int,
    *,
    crash_grace: float = 120.0,
    object_results: Optional[List[RunResult]] = None,
) -> EquivalenceReport:
    """Run both engines on the same config and compare crash behaviour.

    ``object_results`` lets callers reuse a precomputed (expensive)
    object-engine reference fleet.
    """
    if object_results is None:
        object_results = run_fleet(config, n_hosts, crash_grace=crash_grace)
    vector_results = VectorFleet(config, n_hosts, crash_grace=crash_grace).run()
    obj_t, obj_r = _crash_profile(object_results)
    vec_t, vec_r = _crash_profile(vector_results)
    if obj_t and vec_t:
        d, p = ks_2samp(obj_t, vec_t)
    else:
        d, p = None, None
    return EquivalenceReport(
        n_hosts=n_hosts,
        object_crashes=len(obj_t),
        vector_crashes=len(vec_t),
        object_crash_times=tuple(sorted(obj_t)),
        vector_crash_times=tuple(sorted(vec_t)),
        ks_statistic=d,
        ks_pvalue=p,
        object_reasons=tuple(obj_r),
        vector_reasons=tuple(vec_r),
    )


def check_cross_engine(
    report: EquivalenceReport,
    *,
    min_pvalue: float = 0.01,
    max_crash_gap: float = 0.25,
) -> None:
    """Assert an :class:`EquivalenceReport` shows engine agreement.

    Raises :class:`AnalysisError` when the crash-time KS test rejects at
    ``min_pvalue``, when crash fractions diverge by more than
    ``max_crash_gap``, or when the crash-reason vocabularies differ.
    """
    if report.crash_fraction_gap > max_crash_gap:
        raise AnalysisError(
            f"crash fractions diverge: object {report.object_crashes}"
            f"/{report.n_hosts} vs vector {report.vector_crashes}"
            f"/{report.n_hosts}")
    if report.object_reasons != report.vector_reasons:
        raise AnalysisError(
            f"crash reasons diverge: object {report.object_reasons} "
            f"vs vector {report.vector_reasons}")
    if report.ks_pvalue is not None and report.ks_pvalue < min_pvalue:
        raise AnalysisError(
            f"crash-time KS test rejects equivalence: D={report.ks_statistic:.3f} "
            f"p={report.ks_pvalue:.4f} < {min_pvalue}")
