"""Synthetic stress workloads.

Two layers, both standard generative models for self-similar systems
load:

* :class:`OnOffSource` — a source alternating heavy-tailed (Pareto) ON
  and OFF periods; while ON it allocates pages at a constant rate and
  releases them after a hold time.  The superposition of many such
  sources has long-range-dependent aggregate rate with
  ``H = (3 - shape) / 2`` (Taqqu–Willinger–Sherman), which is what makes
  the simulated memory counters (multi)fractal like the real ones.
* :class:`SessionWorkload` — a Poisson session layer: worker processes
  arrive, hold a log-normal working set for an exponential lifetime and
  exit.  Sessions churn the allocator (feeding fragmentation) and give
  the heap-leak fault something to leak from.

Sources report every allocation/release through the
:class:`WorkloadListener` protocol so the fault models can observe churn
without coupling the workload to them.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol

import numpy as np

from ..exceptions import SimulationError
from ..simkernel import Process, RngRegistry, Simulator
from .config import WorkloadConfig
from .memory import MemoryManager


class WorkloadListener(Protocol):
    """Observer of allocation churn (implemented by fault models)."""

    def on_allocation(self, pages: int) -> None:
        """Called after every successful burst allocation."""

    def on_release(self, pages: int) -> int:
        """Called before a release; returns pages to *withhold* (leak)."""


class _NullListener:
    """Default listener: observes nothing, leaks nothing."""

    def on_allocation(self, pages: int) -> None:  # noqa: D102 - protocol impl
        return None

    def on_release(self, pages: int) -> int:  # noqa: D102 - protocol impl
        return 0


def _pareto(rng: np.random.Generator, shape: float, mean: float) -> float:
    """Pareto variate with the given tail index and mean.

    Scale is chosen so the distribution's mean equals ``mean``
    (requires shape > 1): ``x_m = mean * (shape - 1) / shape``.
    """
    xm = mean * (shape - 1.0) / shape
    return float(xm * (1.0 + rng.pareto(shape)))


class OnOffSource(Process):
    """One heavy-tailed ON/OFF burst source.

    While ON, allocates ``on_rate_pages`` pages per second in one-second
    sub-bursts; each sub-burst is released after an exponential hold
    time (minus whatever the listener decides to leak).  Allocation
    failures are routed to ``on_failure`` — the machine uses that to
    declare the crash.
    """

    def __init__(
        self,
        sim: Simulator,
        rngs: RngRegistry,
        name: str,
        config: WorkloadConfig,
        memory: MemoryManager,
        *,
        listener: Optional[WorkloadListener] = None,
        on_failure: Optional[Callable[[str], None]] = None,
    ) -> None:
        super().__init__(sim, rngs, name)
        self.config = config
        self.memory = memory
        self.listener: WorkloadListener = listener if listener is not None else _NullListener()
        self.on_failure = on_failure
        self._on = False
        self._outstanding: List[int] = []
        self.total_allocated_pages = 0
        self.total_leaked_pages = 0

    def start(self) -> None:
        # Desynchronise sources: random initial OFF phase.
        delay = self.rng.uniform(0.0, self.config.mean_off)
        self.sim.schedule_in(delay, self._turn_on, label=f"{self.name}.on")

    # -- ON/OFF cycle -----------------------------------------------------------

    def _turn_on(self) -> None:
        self._on = True
        duration = _pareto(self.rng, self.config.pareto_shape, self.config.mean_on)
        self.sim.schedule_in(duration, self._turn_off, label=f"{self.name}.off")
        self._burst()

    def _turn_off(self) -> None:
        self._on = False
        duration = _pareto(self.rng, self.config.pareto_shape, self.config.mean_off)
        self.sim.schedule_in(duration, self._turn_on, label=f"{self.name}.on")

    def _burst(self) -> None:
        """Allocate one second's worth of pages, then reschedule while ON."""
        if not self._on:
            return
        pages = max(1, int(self.rng.poisson(self.config.on_rate_pages)))
        result = self.memory.allocate(pages)
        if not result.ok:
            if self.on_failure is not None:
                self.on_failure(result.failure_reason or "commit")
            return
        self.total_allocated_pages += pages
        self.listener.on_allocation(pages)
        hold = self.rng.exponential(self.config.hold_time)
        epoch = self.memory.epoch
        self.sim.schedule_in(hold, lambda p=pages, e=epoch: self._release(p, e),
                             label=f"{self.name}.release")
        self.sim.schedule_in(1.0, self._burst, label=f"{self.name}.burst")

    def _release(self, pages: int, epoch: int) -> None:
        if epoch != self.memory.epoch:
            return  # the pages vanished with a rejuvenation restart
        leaked = self.listener.on_release(pages)
        if leaked < 0 or leaked > pages:
            raise SimulationError(f"listener leaked {leaked} of {pages} pages")
        self.total_leaked_pages += leaked
        to_free = pages - leaked
        if to_free > 0:
            self.memory.free(to_free)


class BatchWorkload(Process):
    """A periodic heavyweight batch job (log rotation, reporting, backup).

    Every ``period`` seconds (with jitter) the job allocates a large
    block, holds it for its run time and releases it — the strong
    periodic component visible in real server counters on top of the
    bursty request noise.
    """

    def __init__(
        self,
        sim: Simulator,
        rngs: RngRegistry,
        name: str,
        memory: MemoryManager,
        *,
        period: float = 3600.0,
        pages: int = 6000,
        run_time: float = 120.0,
        listener: Optional[WorkloadListener] = None,
        on_failure: Optional[Callable[[str], None]] = None,
    ) -> None:
        super().__init__(sim, rngs, name)
        if period <= 0 or pages <= 0 or run_time <= 0:
            raise SimulationError("period, pages and run_time must be positive")
        self.memory = memory
        self.period = float(period)
        self.pages = int(pages)
        self.run_time = float(run_time)
        self.listener: WorkloadListener = listener if listener is not None else _NullListener()
        self.on_failure = on_failure
        self.jobs_run = 0

    def start(self) -> None:
        delay = self.rng.uniform(0.0, self.period)
        self.sim.schedule_in(delay, self._launch, label=f"{self.name}.launch")

    def _launch(self) -> None:
        jitter = self.rng.uniform(0.9, 1.1)
        self.sim.schedule_in(self.period * jitter, self._launch,
                             label=f"{self.name}.launch")
        pages = max(1, int(self.pages * self.rng.uniform(0.8, 1.2)))
        result = self.memory.allocate(pages)
        if not result.ok:
            if self.on_failure is not None:
                self.on_failure(result.failure_reason or "commit")
            return
        self.jobs_run += 1
        self.listener.on_allocation(pages)
        epoch = self.memory.epoch
        self.sim.schedule_in(
            self.run_time * float(self.rng.uniform(0.8, 1.3)),
            lambda p=pages, e=epoch: self._finish(p, e),
            label=f"{self.name}.finish",
        )

    def _finish(self, pages: int, epoch: int) -> None:
        if epoch != self.memory.epoch:
            return
        leaked = self.listener.on_release(pages)
        if leaked < 0 or leaked > pages:
            raise SimulationError(f"listener leaked {leaked} of {pages} pages")
        to_free = pages - leaked
        if to_free > 0:
            self.memory.free(to_free)


class SessionWorkload(Process):
    """Poisson arrivals of worker sessions with log-normal working sets."""

    def __init__(
        self,
        sim: Simulator,
        rngs: RngRegistry,
        name: str,
        config: WorkloadConfig,
        memory: MemoryManager,
        *,
        listener: Optional[WorkloadListener] = None,
        on_failure: Optional[Callable[[str], None]] = None,
    ) -> None:
        super().__init__(sim, rngs, name)
        self.config = config
        self.memory = memory
        self.listener: WorkloadListener = listener if listener is not None else _NullListener()
        self.on_failure = on_failure
        self.sessions_started = 0
        self.sessions_finished = 0

    def start(self) -> None:
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        gap = self.rng.exponential(1.0 / self.config.session_rate)
        self.sim.schedule_in(gap, self._arrive, label=f"{self.name}.arrive")

    def _arrive(self) -> None:
        self._schedule_next_arrival()
        # Log-normal working set with sigma=1 around the configured mean.
        mu = np.log(self.config.session_pages_mean) - 0.5
        pages = max(8, int(self.rng.lognormal(mean=mu, sigma=1.0)))
        result = self.memory.allocate(pages)
        if not result.ok:
            if self.on_failure is not None:
                self.on_failure(result.failure_reason or "commit")
            return
        self.sessions_started += 1
        self.listener.on_allocation(pages)
        lifetime = self.rng.exponential(self.config.session_lifetime)
        epoch = self.memory.epoch
        self.sim.schedule_in(lifetime, lambda p=pages, e=epoch: self._depart(p, e),
                             label=f"{self.name}.depart")
        # Sessions touch cold data mid-life, causing hard faults under
        # pressure; schedule one mid-life touch.
        self.sim.schedule_in(
            lifetime * float(self.rng.uniform(0.2, 0.8)),
            lambda p=pages, e=epoch: self._touch(p, e),
            label=f"{self.name}.touch",
        )

    def _touch(self, pages: int, epoch: int) -> None:
        if epoch != self.memory.epoch:
            return
        self.memory.touch_paged_out(int(pages * 0.25))

    def _depart(self, pages: int, epoch: int) -> None:
        if epoch != self.memory.epoch:
            self.sessions_finished += 1
            return  # the session's pages vanished with a restart
        leaked = self.listener.on_release(pages)
        if leaked < 0 or leaked > pages:
            raise SimulationError(f"listener leaked {leaked} of {pages} pages")
        to_free = pages - leaked
        if to_free > 0:
            self.memory.free(to_free)
        self.sessions_finished += 1
