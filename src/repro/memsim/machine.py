"""Machine assembly and stress-run driver.

:class:`Machine` wires a memory manager, the ON/OFF + session workload,
the aging-fault models and the counter sampler onto one simulator, runs
until the host dies (commit or pool exhaustion) or the time budget ends,
and returns a :class:`RunResult` carrying the counter traces and the
ground-truth crash time.

Crash semantics: the first allocation failure starts a grace window of
``crash_grace`` seconds (a real host limps, pages frantically and then
hangs rather than dying on the first failed VirtualAlloc); the crash is
declared at the end of that window.  The sampler keeps sampling through
the grace window, so traces include the death throes like the paper's
do.

:func:`run_fleet` drives N independent seeded runs (the multi-run
experiments behind tables T3/T4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..exceptions import SimulationError
from ..obs import get_logger
from ..obs import session as _obs
from ..obs.profile import profile
from ..simkernel import RngRegistry, Simulator
from ..trace.series import TraceBundle
from .config import MachineConfig
from .faults import CompositeListener, FragmentationFault, LeakProcess
from .memory import MemoryManager
from .sampler import CounterSampler
from .workloads import OnOffSource, SessionWorkload

_log = get_logger("memsim.machine")


@dataclass(frozen=True)
class RunResult:
    """Outcome of one stress run.

    Attributes
    ----------
    bundle:
        The collected performance-counter traces, with run metadata
        (``crash_time``, ``crash_reason``, ``os_profile``, ``seed``).
    crashed:
        Whether the host died before the time budget.
    crash_time:
        Simulated time of death (None when it survived).
    crash_reason:
        ``"commit"`` or ``"pool"`` (None when it survived).
    duration:
        Total simulated seconds.
    """

    bundle: TraceBundle
    crashed: bool
    crash_time: Optional[float]
    crash_reason: Optional[str]
    duration: float
    rejuvenation_times: tuple = ()


class Machine:
    """One simulated host under stress."""

    def __init__(self, config: MachineConfig, *, crash_grace: float = 120.0) -> None:
        if crash_grace < 0:
            raise SimulationError(f"crash_grace must be non-negative, got {crash_grace}")
        self.config = config
        self.crash_grace = crash_grace
        self.sim = Simulator()
        self.rngs = RngRegistry(config.seed)
        self.memory = MemoryManager(config, self.rngs.stream("memory"))

        self._first_failure_time: Optional[float] = None
        self._crash_time: Optional[float] = None
        self._crash_reason: Optional[str] = None
        self._crash_handle = None
        self.rejuvenation_times: List[float] = []

        # Fault models.
        self.leak = LeakProcess(
            self.sim, self.rngs, self.memory, config.faults,
            on_failure=self._note_failure,
        )
        self.fragmentation = FragmentationFault(
            self.memory, config.faults, self.rngs.stream("fault.frag"),
        )
        listener = CompositeListener(self.fragmentation, self.leak)

        # Workload.
        self.sources: List[OnOffSource] = [
            OnOffSource(
                self.sim, self.rngs, f"source.{i}", config.workload, self.memory,
                listener=listener, on_failure=self._note_failure,
            )
            for i in range(config.workload.n_sources)
        ]
        self.sessions = SessionWorkload(
            self.sim, self.rngs, "sessions", config.workload, self.memory,
            listener=listener, on_failure=self._note_failure,
        )
        self.sampler = CounterSampler(self.sim, self.rngs, self.memory, config)

        # Pre-warm: a freshly assembled machine would otherwise spend its
        # first thousands of seconds filling memory toward the workload's
        # steady state, and that transient pollutes baseline calibration.
        # We model an already-running server: a preload block equal to
        # ~90% of the expected steady-state footprint is committed at
        # t=0 and released in chunks as the real workload ramps in.
        w = config.workload
        duty = w.mean_on / (w.mean_on + w.mean_off)
        steady_pages = int(
            w.n_sources * duty * w.on_rate_pages * w.hold_time
            + w.session_rate * w.session_pages_mean * w.session_lifetime
        )
        self._preload_pages = int(0.9 * steady_pages)
        self._preload_chunks = 20
        self._preload_release_span = 2.0 * max(w.hold_time, w.session_lifetime)

    # -- live state (readable during the run by in-sim observers) ---------------

    @property
    def crashed(self) -> bool:
        """True once the host has died (readable mid-run)."""
        return self._crash_time is not None

    @property
    def crash_time(self) -> Optional[float]:
        """Simulated time of death, or None while alive."""
        return self._crash_time

    @property
    def crash_reason(self) -> Optional[str]:
        """``"commit"`` or ``"pool"`` once dead/doomed, else None."""
        return self._crash_reason

    @property
    def first_failure_time(self) -> Optional[float]:
        """Time of the first allocation failure (grace-window start)."""
        return self._first_failure_time

    # -- crash handling ---------------------------------------------------------

    def _note_failure(self, reason: str) -> None:
        """Record the first allocation failure and schedule the crash."""
        if self._first_failure_time is not None:
            return
        self._first_failure_time = self.sim.now
        self._crash_reason = reason
        self._crash_handle = self.sim.schedule_in(
            self.crash_grace, self._crash, priority=-10, label="machine.crash")
        _log.warning("first allocation failure", sim_time=self.sim.now,
                     reason=reason, grace_seconds=self.crash_grace)
        _obs.record_event("alloc_failure_onset", sim_time=self.sim.now,
                          reason=reason)

    def _crash(self) -> None:
        self._crash_time = self.sim.now
        _log.warning("machine crashed", sim_time=self.sim.now,
                     reason=self._crash_reason or "unknown")
        _obs.record_event("crash", sim_time=self.sim.now,
                          reason=self._crash_reason or "unknown")
        self.sim.stop()

    def note_failure(self, reason: str) -> None:
        """Public hook for extra workload components to report allocation
        failures (they feed the same crash logic as the built-in ones)."""
        self._note_failure(reason)

    # -- rejuvenation --------------------------------------------------------------

    def rejuvenate(self) -> None:
        """Restart the software stack: clear all user state and decay.

        Callable from inside the simulation (policy controllers) or, for
        stitched experiments, between ``run_until`` segments.  A pending
        crash (scheduled after a first allocation failure) is averted —
        the restart happened first.
        """
        self.memory.reset_user_state()
        if self._crash_handle is not None:
            self._crash_handle.cancel()
            self._crash_handle = None
        self._first_failure_time = None
        self._crash_reason = None
        self.rejuvenation_times.append(self.sim.now)
        _log.info("rejuvenated", sim_time=self.sim.now,
                  n_rejuvenations=len(self.rejuvenation_times))
        _obs.record_event("rejuvenation", sim_time=self.sim.now)
        _obs.counter("memsim.rejuvenations").inc()

    # -- telemetry ----------------------------------------------------------------

    def _publish_metrics(self) -> None:
        """Fold the run's memory/paging activity into the metrics registry.

        Counters are cumulative across a fleet (each run adds its
        totals); gauges carry the last run's end state.  Everything is
        read from the manager's own accounting, so this is one cheap
        pass at run end rather than per-allocation overhead.
        """
        if not _obs.telemetry_enabled():
            return
        mem = self.memory
        _obs.counter("memsim.allocated_pages").inc(mem.cum_allocated_pages)
        _obs.counter("memsim.freed_pages").inc(mem.cum_freed_pages)
        _obs.counter("memsim.page_faults").inc(mem.cum_page_faults)
        _obs.counter("memsim.pages_out").inc(mem.cum_pages_out)
        _obs.counter("memsim.pages_in").inc(mem.cum_pages_in)
        _obs.counter("memsim.alloc_failures").inc(mem.cum_alloc_failures)
        _obs.counter("memsim.samples_collected").inc(self.sampler.n_samples())
        _obs.gauge("memsim.leaked_pinned_pages").set(mem.pinned_pages)
        _obs.gauge("memsim.resident_pages").set(mem.resident_pages)
        _obs.gauge("memsim.pagefile_pages").set(mem.pagefile_pages)
        _obs.gauge("memsim.available_bytes").set(mem.available_bytes)
        _obs.histogram("memsim.run_sim_seconds").observe(self.sim.now)

    # -- driving ------------------------------------------------------------------

    @profile("memsim.machine_run")
    def run(self) -> RunResult:
        """Run the stress experiment to crash or time budget."""
        _log.info("run starting", profile=self.config.os_profile,
                  seed=self.config.seed,
                  budget_seconds=self.config.max_run_seconds)
        with _obs.span("machine-setup", profile=self.config.os_profile,
                       seed=self.config.seed):
            if self._preload_pages > 0:
                result = self.memory.allocate(self._preload_pages)
                if not result.ok:
                    raise SimulationError(
                        "preload exceeds memory; workload steady state does not fit "
                        "this machine configuration"
                    )
                chunk = self._preload_pages // self._preload_chunks
                remainder = self._preload_pages - chunk * self._preload_chunks
                for i in range(self._preload_chunks):
                    pages = chunk + (remainder if i == self._preload_chunks - 1 else 0)
                    if pages <= 0:
                        continue
                    when = (i + 1) * self._preload_release_span / self._preload_chunks
                    epoch = self.memory.epoch
                    self.sim.schedule(
                        when,
                        lambda p=pages, e=epoch: (
                            self.memory.free(p) if self.memory.epoch == e else None),
                        label="machine.preload_release")
            for source in self.sources:
                source.ensure_started()
            self.sessions.ensure_started()
            self.leak.ensure_started()
            self.sampler.ensure_started()

        with _obs.span("machine-run", profile=self.config.os_profile,
                       seed=self.config.seed):
            self.sim.run_until(self.config.max_run_seconds)
        self.memory.check_invariants()

        crashed = self._crash_time is not None
        duration = self.sim.now
        self._publish_metrics()
        if crashed:
            _log.info("run finished: crashed", sim_time=self._crash_time,
                      reason=self._crash_reason or "unknown",
                      samples=self.sampler.n_samples())
        else:
            _log.info("run finished: survived", duration=duration,
                      samples=self.sampler.n_samples())
        metadata: dict = {
            "os_profile": self.config.os_profile,
            "seed": float(self.config.seed),
            "duration": duration,
        }
        if self.rejuvenation_times:
            metadata["n_rejuvenations"] = float(len(self.rejuvenation_times))
        if crashed:
            metadata["crash_time"] = float(self._crash_time)
            metadata["crash_reason"] = self._crash_reason or "unknown"
            metadata["first_failure_time"] = float(self._first_failure_time)
        with _obs.span("machine-collect", seed=self.config.seed):
            bundle = self.sampler.to_bundle(metadata)
        return RunResult(
            bundle=bundle,
            crashed=crashed,
            crash_time=self._crash_time,
            crash_reason=self._crash_reason if crashed else None,
            duration=duration,
            rejuvenation_times=tuple(self.rejuvenation_times),
        )


def _fleet_unit(unit) -> RunResult:
    """Pool entry point: one seeded fleet run."""
    base_config, i, crash_grace = unit
    config = base_config.with_seed(base_config.seed + i)
    return Machine(config, crash_grace=crash_grace).run()


FLEET_ENGINES = ("object", "vector")


def run_fleet(
    base_config: MachineConfig,
    n_runs: int,
    *,
    crash_grace: float = 120.0,
    workers: int = 1,
    engine: str = "object",
) -> List[RunResult]:
    """Run ``n_runs`` independent machines differing only in seed.

    Run ``i`` uses seed ``base_config.seed + i``; everything else is
    shared, so fleets give i.i.d. replicates of the same experiment.
    ``workers > 1`` fans the runs across a process pool
    (:func:`repro.perf.pool.parallel_map`); per-run seeding and ordered
    reassembly keep the result list bit-identical to the sequential one.

    ``engine`` selects the simulation core: ``"object"`` steps one
    :class:`Machine` per run through the discrete-event kernel (the
    oracle), ``"vector"`` advances the whole fleet per tick through the
    struct-of-arrays engine (:mod:`repro.memsim.fleet_vec`) — order of
    magnitude faster per host, statistically equivalent traces (see
    ``docs/PERFORMANCE.md`` for the contract).
    """
    if n_runs < 1:
        raise SimulationError(f"n_runs must be >= 1, got {n_runs}")
    if engine not in FLEET_ENGINES:
        raise SimulationError(
            f"unknown fleet engine {engine!r}; expected one of {FLEET_ENGINES}")
    if engine == "vector":
        from .fleet_vec import run_fleet_vector

        return run_fleet_vector(base_config, n_runs, crash_grace=crash_grace,
                                workers=workers)
    from ..perf.pool import parallel_map

    units = [(base_config, i, crash_grace) for i in range(n_runs)]
    return parallel_map(_fleet_unit, units, workers=workers,
                        label="fleet-worker")
