"""The simulated kernel memory manager.

Aggregate page-accounting model of an NT-style virtual memory system:

* **Physical frames** hold resident pages; what is left over is the
  `Available Bytes` counter.
* **Commit**: every live allocation is committed; committed pages beyond
  physical residency live in the paging file.  ``commit <= ram +
  pagefile - fragmentation losses`` is a hard invariant; an allocation
  that would break it *fails*, and the machine treats repeated commit
  failure as the crash.
* **Kernel nonpaged pool**: a separate, non-pageable arena consumed by
  pool allocations (and slowly by pool leaks); exhaustion is the second
  crash mode, mirroring NT bugchecks on pool depletion.
* **Working-set trimming**: when free physical memory drops below the
  trim threshold the OS moves cold resident pages to the paging file
  (pages-out); re-touching them later faults them back in (pages-in).
* **Thrashing**: below the thrash threshold every allocation causes
  extra page-out/page-in churn proportional to the deficit — the
  mechanism that destabilises counter dynamics shortly before death.

The manager is deliberately *aggregate* (no per-page metadata): the
analysis consumes counter time series, and this level of modelling
reproduces their joint dynamics while keeping multi-day runs fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import SimulationError
from .config import PAGE_SIZE, MachineConfig


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of an allocation request.

    Attributes
    ----------
    ok:
        Whether the allocation succeeded.
    failure_reason:
        ``"commit"`` or ``"pool"`` when it did not, else None.
    """

    ok: bool
    failure_reason: Optional[str] = None


class MemoryManager:
    """Aggregate page-level memory accounting for one machine."""

    def __init__(self, config: MachineConfig, rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng
        self.total_pages = config.total_pages
        self.commit_limit_pages = config.commit_limit_bytes // PAGE_SIZE

        # Baseline OS residency: kernel code + system working set (~18% RAM).
        self.os_resident_pages = int(self.total_pages * 0.18)
        self._pool_baseline_bytes = int(config.nonpaged_pool_bytes * 0.25)

        # Mutable state (pages unless noted).
        self.resident_pages = 0          # user-mode resident pages
        self.pagefile_pages = 0          # pages currently paged out
        self.pinned_pages = 0            # resident pages that can never be trimmed
        self.pool_used_bytes = self._pool_baseline_bytes
        self.fragmentation_lost_bytes = 0.0

        # Epoch counter: bumped by rejuvenation so that stale release
        # events from before a restart can recognise themselves.
        self.epoch = 0

        # Cumulative activity counters (monotone; sampler differentiates).
        self.cum_pages_out = 0
        self.cum_pages_in = 0
        self.cum_page_faults = 0
        self.cum_alloc_failures = 0
        self.cum_allocated_pages = 0
        self.cum_freed_pages = 0

        self.last_failure: Optional[str] = None

    # -- derived quantities ---------------------------------------------------

    @property
    def committed_pages(self) -> int:
        """All live user commit: resident plus paged out."""
        return self.resident_pages + self.pagefile_pages

    @property
    def available_pages(self) -> int:
        """Free physical frames (the `Available Bytes` counter, in pages)."""
        pool_pages = -(-self.pool_used_bytes // PAGE_SIZE)  # ceil div
        free = self.total_pages - self.os_resident_pages - self.resident_pages - pool_pages
        return max(free, 0)

    @property
    def available_bytes(self) -> int:
        """Free physical memory in bytes."""
        return self.available_pages * PAGE_SIZE

    @property
    def effective_commit_limit_pages(self) -> int:
        """Commit limit reduced by fragmentation losses."""
        lost_pages = int(self.fragmentation_lost_bytes) // PAGE_SIZE
        return max(self.commit_limit_pages - lost_pages, 0)

    @property
    def available_fraction(self) -> float:
        """Free physical frames as a fraction of all frames."""
        return self.available_pages / self.total_pages

    # -- allocation paths -----------------------------------------------------

    def allocate(self, pages: int) -> AllocationResult:
        """Commit and make resident ``pages`` user pages.

        Follows the NT order of checks: commit first (hard failure),
        then physical residency (page out cold pages as needed, which
        can itself fail when the paging file is full).
        """
        if pages <= 0:
            raise SimulationError(f"allocation must be positive, got {pages}")

        if self.committed_pages + pages > self.effective_commit_limit_pages:
            self.cum_alloc_failures += 1
            self.last_failure = "commit"
            return AllocationResult(ok=False, failure_reason="commit")

        shortfall = pages - self.available_pages
        if shortfall > 0:
            paged = self._page_out(shortfall)
            if paged < shortfall:
                # Could not make room: remaining resident pages are pinned
                # or hot, and the paging file cannot absorb more.  This is
                # physical (working-set) exhaustion, distinct from hitting
                # the commit limit.
                self.cum_alloc_failures += 1
                self.last_failure = "memory"
                return AllocationResult(ok=False, failure_reason="memory")

        self.resident_pages += pages
        self.cum_allocated_pages += pages
        self.cum_page_faults += pages  # demand-zero faults on first touch

        self._maybe_trim()
        self._thrash_churn(pages)
        return AllocationResult(ok=True)

    def free(self, pages: int) -> None:
        """Release ``pages`` of user commit.

        Freed pages are drawn from the paging file and residency in
        proportion to their shares, with a 2x bias toward the paging
        file (freed data is colder than average, so it is likelier to
        have been paged out).  A pagefile-first rule would ratchet
        residency permanently high; pure proportionality would under-
        release cold pages.
        """
        if pages <= 0:
            raise SimulationError(f"free must be positive, got {pages}")
        if pages > self.committed_pages:
            raise SimulationError(
                f"freeing {pages} pages but only {self.committed_pages} committed"
            )
        if self.committed_pages > 0:
            cold_share = self.pagefile_pages / self.committed_pages
            want_cold = int(round(pages * min(1.0, 2.0 * cold_share)))
        else:
            want_cold = 0
        unpinned_resident = max(self.resident_pages - self.pinned_pages, 0)
        from_pagefile = min(want_cold, self.pagefile_pages, pages)
        from_resident = pages - from_pagefile
        if from_resident > unpinned_resident:
            # Not enough unpinned resident pages: take more from the file.
            from_resident = unpinned_resident
            from_pagefile = pages - from_resident
            if from_pagefile > self.pagefile_pages:
                raise SimulationError(
                    "free would release pinned pages; caller accounting is wrong"
                )
        self.pagefile_pages -= from_pagefile
        self.resident_pages -= from_resident
        self.cum_freed_pages += pages

    def touch_paged_out(self, pages: int) -> None:
        """Fault ``pages`` cold pages back into residency (hard faults)."""
        pages = min(pages, self.pagefile_pages)
        if pages <= 0:
            return
        shortfall = pages - self.available_pages
        if shortfall > 0:
            moved = self._page_out(shortfall)
            pages = min(pages, moved + max(self.available_pages, 0))
            if pages <= 0:
                return
        self.pagefile_pages -= pages
        self.resident_pages += pages
        self.cum_pages_in += pages
        self.cum_page_faults += pages

    def pin(self, pages: int) -> None:
        """Mark ``pages`` of existing commit as pinned (never trimmable).

        This is how aged leaks hurt *physical* memory on real systems:
        leaked objects keep live references (or sit in locked/driver
        memory), so the pager cannot evict them.  The pages must already
        be committed (a leak withholds them from ``free``); pinning
        forces them resident, faulting them in from the paging file if
        necessary.
        """
        if pages <= 0:
            raise SimulationError(f"pin must be positive, got {pages}")
        if self.pinned_pages + pages > self.committed_pages:
            raise SimulationError(
                f"pinning {pages} pages would exceed committed memory"
            )
        self.pinned_pages += pages
        if self.pinned_pages > self.resident_pages:
            self.touch_paged_out(self.pinned_pages - self.resident_pages)
            # If the fault-in could not complete (paging file pressure),
            # force residency — pinned pages are by definition resident —
            # and try to evict other pages to compensate.
            if self.pinned_pages > self.resident_pages:
                deficit = self.pinned_pages - self.resident_pages
                moved = min(deficit, self.pagefile_pages)
                self.pagefile_pages -= moved
                self.resident_pages += moved
                self._page_out(moved)

    def pool_allocate(self, nbytes: float) -> AllocationResult:
        """Consume kernel nonpaged pool; exhaustion is fatal on real NT."""
        if nbytes <= 0:
            raise SimulationError(f"pool allocation must be positive, got {nbytes}")
        if self.pool_used_bytes + nbytes > self.config.nonpaged_pool_bytes:
            self.cum_alloc_failures += 1
            self.last_failure = "pool"
            return AllocationResult(ok=False, failure_reason="pool")
        self.pool_used_bytes += int(nbytes)
        return AllocationResult(ok=True)

    def add_fragmentation_loss(self, nbytes: float) -> None:
        """Permanently lose ``nbytes`` of commit capacity to fragmentation."""
        if nbytes < 0:
            raise SimulationError("fragmentation loss must be non-negative")
        self.fragmentation_lost_bytes += nbytes

    # -- paging machinery ------------------------------------------------------

    def _page_out(self, pages: int) -> int:
        """Move up to ``pages`` resident pages to the paging file.

        Returns how many were actually moved (bounded by resident pages
        that are trimmable and by paging-file capacity).
        """
        pagefile_capacity = self.config.pagefile_bytes // PAGE_SIZE
        room = pagefile_capacity - self.pagefile_pages
        # Pinned pages never leave RAM; of the rest, a fraction is hot
        # (actively referenced) and cannot be trimmed either.
        trimmable = int(max(self.resident_pages - self.pinned_pages, 0) * 0.85)
        moved = max(min(pages, room, trimmable), 0)
        if moved > 0:
            self.resident_pages -= moved
            self.pagefile_pages += moved
            self.cum_pages_out += moved
        return moved

    def _maybe_trim(self) -> None:
        """Working-set trim pass when free memory is below the threshold."""
        if self.available_fraction >= self.config.trim_threshold:
            return
        target = int(self.resident_pages * self.config.trim_aggressiveness)
        if target > 0:
            self._page_out(target)

    def _thrash_churn(self, alloc_pages: int) -> None:
        """Extra paging churn when memory pressure reaches thrashing levels.

        The deficit below the thrash threshold drives page-in/page-out
        cycles: trimmed pages are immediately re-touched by their owners.
        The churn magnitude is stochastic (geometric-ish bursts), which
        is what roughens counter dynamics before death.
        """
        frac = self.available_fraction
        threshold = self.config.thrash_threshold
        if frac >= threshold:
            return
        severity = (threshold - frac) / threshold  # 0..1
        burst = self._rng.geometric(p=max(0.02, 1.0 - 0.9 * severity))
        churn = int(alloc_pages * severity * burst)
        if churn <= 0:
            return
        moved = self._page_out(churn)
        if moved > 0:
            # Owners fault a random portion straight back in.
            back = int(moved * self._rng.uniform(0.4, 0.95))
            if back > 0:
                self.touch_paged_out(back)

    # -- rejuvenation --------------------------------------------------------------

    def reset_user_state(self) -> None:
        """Rejuvenate: discard every user allocation and accumulated decay.

        Models a software restart (the classical rejuvenation action):
        all user commit — including pinned leak residue — is released,
        the kernel pool returns to its boot baseline and fragmentation
        is cleared.  Cumulative activity counters are *not* reset (they
        model perfmon raw counters, which survive service restarts as
        far as the analysis is concerned).  The epoch bump lets pending
        release events from before the restart recognise that their
        pages are gone.
        """
        self.resident_pages = 0
        self.pagefile_pages = 0
        self.pinned_pages = 0
        self.pool_used_bytes = self._pool_baseline_bytes
        self.fragmentation_lost_bytes = 0.0
        self.last_failure = None
        self.epoch += 1

    # -- invariant check (used by tests and debug runs) -------------------------

    def check_invariants(self) -> None:
        """Raise :class:`SimulationError` if accounting is inconsistent."""
        if self.resident_pages < 0 or self.pagefile_pages < 0:
            raise SimulationError("negative page accounting")
        if self.pinned_pages < 0 or self.pinned_pages > self.resident_pages:
            raise SimulationError(
                f"pinned pages ({self.pinned_pages}) exceed resident "
                f"({self.resident_pages})"
            )
        if self.committed_pages > self.commit_limit_pages:
            raise SimulationError(
                f"commit {self.committed_pages} exceeds hard limit {self.commit_limit_pages}"
            )
        if self.pool_used_bytes > self.config.nonpaged_pool_bytes:
            raise SimulationError("nonpaged pool over capacity")
        pagefile_capacity = self.config.pagefile_bytes // PAGE_SIZE
        if self.pagefile_pages > pagefile_capacity:
            raise SimulationError("paging file over capacity")
