"""Vectorised struct-of-arrays fleet engine.

One process advances an entire fleet of simulated hosts per tick: every
piece of per-machine state in the object model (resident/pagefile/pinned
pages, pool usage, fragmentation decay, ON/OFF source phases, session
pools, grace-window clocks, crash flags) becomes a numpy array indexed
by host, and the discrete-event loop collapses into a fixed-step advance
(``dt`` = 1 s by default, the object model's burst/sampling granularity)
with an *event-horizon mask*: crashed hosts drop out of the active set
without per-host branching.

Equivalence contract (enforced by ``tests/test_fleet_vec.py`` and the
``memsim.fleet_vec_equiv`` bench case; methodology in
``docs/PERFORMANCE.md``):

* **exact batch decomposition** — host ``i`` of an ``n``-host fleet is
  bit-identical to host ``i`` simulated alone (and to any sharding of
  the fleet across workers), because every variate is a counter-based
  function of ``(base_seed + i, stream, tick)``
  (:mod:`repro.simkernel.batch_rng`);
* **object-model agreement** — same sample grid, counter set, units and
  metadata keys as :class:`~repro.memsim.machine.Machine`; same crash
  vocabulary (``commit`` / ``memory`` / ``pool``) and grace-window
  semantics; crash-*time* distributions statistically indistinguishable
  (KS) from the object engine.  Bit-equality across engines is
  impossible by construction (an event heap and a fixed-step loop
  consume randomness differently), so cross-engine equivalence is
  distributional by design while within-engine determinism is exact.

Mechanism-by-mechanism the tick loop mirrors the object model's
aggregate accounting (`memory.py`): commit-first allocation with
page-out shortfall handling, 2x cold-biased frees, working-set trim,
thrash churn, binomial heap-leak pinning, periodic pool drip, and
fragmentation erosion of the commit limit.  Differences are deliberate
and documented: allocations aggregate per tick (partial fills near the
limit instead of per-request all-or-nothing), burst/session releases
land on tick-resolution ring buffers, and the pool drip uses a
moment-matched lognormal in place of the gamma.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SimulationError
from ..obs import get_logger
from ..obs import session as _obs
from ..obs.profile import profile
from ..simkernel import batch_rng
from ..simkernel.batch_rng import FleetRng
from ..trace.series import TimeSeries, TraceBundle
from .config import PAGE_SIZE, MachineConfig
from .machine import RunResult
from .sampler import COUNTER_NAMES, _COUNTER_UNITS

_log = get_logger("memsim.fleet_vec")

_REASONS = {1: "commit", 2: "memory", 3: "pool"}
_POOL_DRIP_PERIOD = 5.0  # LeakProcess default period, seconds


class VectorFleet:
    """A fleet of independent hosts advanced in lockstep.

    Parameters
    ----------
    config:
        The shared machine configuration.  ``config.seed`` is the base
        seed; host ``i`` runs with seed ``config.seed + i`` (the same
        derivation as :func:`~repro.memsim.machine.run_fleet`).
    n_hosts:
        Fleet size (ignored when ``seeds`` is given).
    seeds:
        Explicit per-host seeds, for sharded execution.
    crash_grace:
        Seconds between the first allocation failure and the crash.
    dt:
        Tick length in seconds.  ``config.sampling_interval`` must be an
        integer multiple.
    ring_bins:
        Depth of the future-release ring buffers, in ticks.  Holds and
        lifetimes beyond the ring are clamped to its horizon (with the
        default 4096-tick ring the clamped tail is negligible for every
        stock scenario).
    collect_traces:
        When False, skip per-sample trace storage (results carry empty
        bundles with full metadata) — for throughput studies where only
        crash times matter.
    batch_job:
        Optional ``(period, pages, run_time)`` tuple attaching the
        scenario-style periodic batch job to every host.
    """

    def __init__(
        self,
        config: MachineConfig,
        n_hosts: Optional[int] = None,
        *,
        seeds: Optional[Sequence[int]] = None,
        crash_grace: float = 120.0,
        dt: float = 1.0,
        ring_bins: int = 4096,
        collect_traces: bool = True,
        batch_job: Optional[Tuple[float, int, float]] = None,
    ) -> None:
        if crash_grace < 0:
            raise SimulationError(f"crash_grace must be non-negative, got {crash_grace}")
        if dt <= 0:
            raise SimulationError(f"dt must be positive, got {dt}")
        if seeds is None:
            if n_hosts is None or n_hosts < 1:
                raise SimulationError(f"n_hosts must be >= 1, got {n_hosts}")
            seed_arr = batch_rng.host_seeds(config.seed, n_hosts)
        else:
            seed_arr = np.asarray(list(seeds), dtype=np.int64)
            if seed_arr.size == 0:
                raise SimulationError("seeds must be non-empty")
        n = int(seed_arr.size)
        se = config.sampling_interval / dt
        if abs(se - round(se)) > 1e-9 or round(se) < 1:
            raise SimulationError(
                f"sampling_interval ({config.sampling_interval}) must be an "
                f"integer multiple of dt ({dt})"
            )
        if ring_bins < 16:
            raise SimulationError(f"ring_bins must be >= 16, got {ring_bins}")

        self.config = config
        self.crash_grace = float(crash_grace)
        self.dt = float(dt)
        self.n_hosts = n
        self._seeds = seed_arr.astype(np.int64)
        self._rng = FleetRng(self._seeds)
        self._collect = bool(collect_traces)
        self._B = int(ring_bins)
        self._sample_every = int(round(se))

        w = config.workload
        self._S = w.n_sources
        f = config.faults

        # -- memory-manager state (mirrors MemoryManager) -------------------
        self.total_pages = config.total_pages
        self.commit_limit_pages = config.commit_limit_bytes // PAGE_SIZE
        self.os_resident_pages = int(self.total_pages * 0.18)
        self._pool_baseline = int(config.nonpaged_pool_bytes * 0.25)
        self._pf_capacity = config.pagefile_bytes // PAGE_SIZE

        z = lambda dtype=np.int64: np.zeros(n, dtype=dtype)
        self.resident = z()
        self.pagefile = z()
        self.pinned = z()
        self.pool_used = np.full(n, float(self._pool_baseline))
        self.frag_lost = z(np.float64)
        self.cum_out = z()
        self.cum_in = z()
        self.cum_faults = z()
        self.cum_alloc_failures = z()
        self.cum_allocated = z()
        self.cum_freed = z()

        # -- crash bookkeeping ---------------------------------------------
        self.active = np.ones(n, dtype=bool)
        self.first_failure = np.full(n, np.nan)
        self.crash_time = np.full(n, np.nan)
        self.crash_reason = z(np.int8)
        self._rejuvenations: List[List[float]] = [[] for _ in range(n)]

        # -- workload state -------------------------------------------------
        u0 = self._rng.uniforms("onoff.init", 0, lanes=self._S)
        self.src_on = np.zeros((n, self._S), dtype=bool)
        self.src_next = u0 * w.mean_off  # absolute time of next toggle
        self._release_ring = np.zeros((n, self._B), dtype=np.int64)
        self._touch_ring = np.zeros((n, self._B), dtype=np.int64)

        self._batch = batch_job
        if batch_job is not None:
            period, pages, run_time = batch_job
            if period <= 0 or pages <= 0 or run_time <= 0:
                raise SimulationError("batch_job period, pages and run_time must be positive")
            ub = self._rng.uniforms("batch.init", 0)
            self._batch_next = ub * float(period)
        else:
            self._batch_next = None

        # -- preload (identical to Machine: ~90% of steady state) ------------
        duty = w.mean_on / (w.mean_on + w.mean_off)
        steady = int(
            w.n_sources * duty * w.on_rate_pages * w.hold_time
            + w.session_rate * w.session_pages_mean * w.session_lifetime
        )
        self._preload_pages = int(0.9 * steady)
        self._preload_enabled = np.ones(n, dtype=bool)
        self._preload_map: Dict[int, int] = {}
        chunks = 20
        span = 2.0 * max(w.hold_time, w.session_lifetime)
        if self._preload_pages > 0:
            chunk = self._preload_pages // chunks
            remainder = self._preload_pages - chunk * chunks
            for i in range(chunks):
                pages = chunk + (remainder if i == chunks - 1 else 0)
                if pages <= 0:
                    continue
                when = (i + 1) * span / chunks
                k = max(1, int(np.ceil(when / dt - 1e-9)))
                self._preload_map[k] = self._preload_map.get(k, 0) + pages

        # -- sampler state --------------------------------------------------
        t_end = config.max_run_seconds
        self._t_end = float(t_end)
        self._T = int(np.floor(t_end / dt + 1e-9))
        self._n_slots = self._T // self._sample_every
        self._last_io = z()
        self._last_faults = z()
        self._sample_grid = (
            np.arange(1, self._n_slots + 1, dtype=np.float64)
            * self._sample_every * dt
        )
        if self._collect and self._n_slots > 0:
            self._traces = np.full((n, self._n_slots, len(COUNTER_NAMES)), np.nan)
        else:
            self._traces = np.zeros((n, 0, len(COUNTER_NAMES)))
        self._n_samples = 0  # telemetry: host-samples recorded

        self._tick = 0  # last completed tick index
        self._now = 0.0
        self._host_ticks = 0
        self._pool_next = _POOL_DRIP_PERIOD

        # Precompute fault/workload scalars.
        self._leak_frac = f.heap_leak_fraction
        self._pool_rate = f.pool_leak_rate
        self._pool_cv = f.pool_leak_burst_cv
        self._frag_rate = f.fragmentation_rate
        self._onset = f.fault_onset_time
        self._sess_mu = float(np.log(w.session_pages_mean) - 0.5)

        if self._preload_pages > 0:
            self._allocate_aggregate(
                np.full(n, self._preload_pages, dtype=np.int64), k=0
            )
            if np.isnan(self.first_failure).sum() != n:
                raise SimulationError(
                    "preload exceeds memory; workload steady state does not fit "
                    "this machine configuration"
                )

    # -- derived quantities (vectorised MemoryManager views) ---------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def committed(self) -> np.ndarray:
        return self.resident + self.pagefile

    def _available(self) -> np.ndarray:
        pool_pages = np.ceil(self.pool_used / PAGE_SIZE).astype(np.int64)
        free = (self.total_pages - self.os_resident_pages
                - self.resident - pool_pages)
        return np.maximum(free, 0)

    def _eff_limit(self) -> np.ndarray:
        lost = np.floor(self.frag_lost).astype(np.int64) // PAGE_SIZE
        return np.maximum(self.commit_limit_pages - lost, 0)

    # -- paging machinery ---------------------------------------------------

    def _page_out(self, req: np.ndarray) -> np.ndarray:
        room = self._pf_capacity - self.pagefile
        trimmable = (np.maximum(self.resident - self.pinned, 0) * 0.85).astype(np.int64)
        moved = np.maximum(np.minimum(np.minimum(req, room), trimmable), 0)
        self.resident -= moved
        self.pagefile += moved
        self.cum_out += moved
        return moved

    def _touch_in(self, req: np.ndarray) -> None:
        pages = np.minimum(req, self.pagefile)
        avail = self._available()
        shortfall = pages - avail
        need = shortfall > 0
        if np.any(need):
            moved = self._page_out(np.where(need, shortfall, 0))
            avail2 = self._available()
            pages = np.where(
                need, np.minimum(pages, moved + np.maximum(avail2, 0)), pages)
        pages = np.maximum(pages, 0)
        self.pagefile -= pages
        self.resident += pages
        self.cum_in += pages
        self.cum_faults += pages

    def _free(self, req: np.ndarray) -> None:
        committed = self.committed
        pages = np.minimum(np.maximum(req, 0), committed)
        cold_share = self.pagefile / np.maximum(committed, 1)
        want_cold = np.rint(pages * np.minimum(1.0, 2.0 * cold_share)).astype(np.int64)
        unpinned = np.maximum(self.resident - self.pinned, 0)
        from_pf = np.minimum(np.minimum(want_cold, self.pagefile), pages)
        from_res = pages - from_pf
        over = from_res > unpinned
        from_res = np.where(over, unpinned, from_res)
        from_pf = np.minimum(pages - from_res, self.pagefile)
        self.pagefile -= from_pf
        self.resident -= from_res
        self.cum_freed += from_pf + from_res

    def _pin(self, pages: np.ndarray) -> None:
        self.pinned += pages
        deficit = self.pinned - self.resident
        need = deficit > 0
        if np.any(need):
            self._touch_in(np.where(need, deficit, 0))
            deficit = np.maximum(self.pinned - self.resident, 0)
            moved = np.minimum(deficit, self.pagefile)
            self.pagefile -= moved
            self.resident += moved
            self._page_out(moved)

    def _maybe_trim(self) -> None:
        frac = self._available() / self.total_pages
        low = frac < self.config.trim_threshold
        if np.any(low):
            target = (self.resident * self.config.trim_aggressiveness).astype(np.int64)
            self._page_out(np.where(low, target, 0))

    def _thrash(self, alloc_pages: np.ndarray, k: int) -> None:
        frac = self._available() / self.total_pages
        threshold = self.config.thrash_threshold
        hot = (frac < threshold) & (alloc_pages > 0) & self.active
        if not np.any(hot):
            return
        severity = np.where(hot, (threshold - frac) / threshold, 0.0)
        u = self._rng.uniforms("thrash", k * 2, lanes=2)
        p = np.maximum(0.02, 1.0 - 0.9 * severity)
        burst = batch_rng.geometric(u[:, 0], p)
        churn = (alloc_pages * severity * burst).astype(np.int64)
        churn = np.where(hot, churn, 0)
        moved = self._page_out(churn)
        back = (moved * (0.4 + 0.55 * u[:, 1])).astype(np.int64)
        self._touch_in(np.where(hot, back, 0))

    # -- allocation ---------------------------------------------------------

    def _allocate_aggregate(self, req: np.ndarray, *, k: int = 0) -> np.ndarray:
        """Grant as much of ``req`` as commit + physical limits allow.

        Returns the granted pages per host and records commit/memory
        failures (the object model fails whole requests; the aggregate
        model partial-fills, which keeps commit hugging the limit the
        same way many small object-model requests do).
        """
        req = np.where(self.active, req, 0)
        headroom = self._eff_limit() - self.committed
        commit_fail = req > headroom
        grant = np.minimum(req, np.maximum(headroom, 0))
        avail = self._available()
        shortfall = grant - avail
        need = shortfall > 0
        mem_fail = np.zeros_like(commit_fail)
        if np.any(need):
            moved = self._page_out(np.where(need, shortfall, 0))
            mem_fail = need & (moved < shortfall)
            grant = np.where(
                mem_fail, np.maximum(np.minimum(grant, avail + moved), 0), grant)
        self.resident += grant
        self.cum_allocated += grant
        self.cum_faults += grant
        failed = (commit_fail | mem_fail) & self.active
        if np.any(failed):
            self.cum_alloc_failures += failed
            reason = np.where(commit_fail, np.int8(1), np.int8(2))
            self._note_failure(failed, reason)
        self._maybe_trim()
        self._thrash(grant, k)
        return grant

    def _note_failure(self, failed: np.ndarray, reason: np.ndarray) -> None:
        fresh = failed & np.isnan(self.first_failure) & self.active
        if np.any(fresh):
            self.first_failure = np.where(fresh, self._now, self.first_failure)
            self.crash_reason = np.where(fresh, reason, self.crash_reason)

    # -- rejuvenation -------------------------------------------------------

    def rejuvenate(self, hosts: Optional[np.ndarray] = None) -> None:
        """Restart the software stack on ``hosts`` (mask or index array;
        default: every active host).  Mirrors
        :meth:`~repro.memsim.machine.Machine.rejuvenate`: all user state
        and decay cleared, a pending grace-window crash averted, pending
        releases (the epoch guard in the object model) dropped."""
        mask = np.zeros(self.n_hosts, dtype=bool)
        if hosts is None:
            mask[:] = self.active
        else:
            mask[hosts] = True
        mask &= self.active
        if not np.any(mask):
            return
        self.resident = np.where(mask, 0, self.resident)
        self.pagefile = np.where(mask, 0, self.pagefile)
        self.pinned = np.where(mask, 0, self.pinned)
        self.pool_used = np.where(mask, float(self._pool_baseline), self.pool_used)
        self.frag_lost = np.where(mask, 0.0, self.frag_lost)
        self.first_failure = np.where(mask, np.nan, self.first_failure)
        self.crash_reason = np.where(mask, np.int8(0), self.crash_reason)
        self._release_ring[mask] = 0
        self._touch_ring[mask] = 0
        self._preload_enabled &= ~mask
        for i in np.flatnonzero(mask):
            self._rejuvenations[i].append(self._now)
        if _obs.telemetry_enabled():
            _obs.counter("memsim.rejuvenations").inc(int(mask.sum()))

    # -- the tick loop ------------------------------------------------------

    def advance(self, until: float) -> None:
        """Advance the fleet to ``min(until, max_run_seconds)``."""
        until = min(float(until), self._t_end)
        if until < self._now:
            raise SimulationError(f"until ({until}) is before now ({self._now})")
        dt = self.dt
        w = self.config.workload
        k = self._tick
        while (k + 1) * dt <= until + 1e-9:
            k += 1
            self._tick = k
            now = k * dt
            self._now = now
            eps = 1e-9 * max(1.0, now)

            # Event horizon: hosts whose grace window expired before this
            # tick crash now (the object model's priority -10 crash event
            # fires before any same-time work, so no ops or samples here).
            doomed = self.active & (self.first_failure + self.crash_grace <= now + eps)
            if np.any(doomed):
                self.crash_time = np.where(
                    doomed, self.first_failure + self.crash_grace, self.crash_time)
                self.active &= ~doomed
            act = self.active
            n_act = int(act.sum())
            if n_act == 0:
                break
            self._host_ticks += n_act

            # 1. Pool-leak drip (period 5 s, lognormal moment-matched to
            #    the object model's gamma burst).
            drips = 0
            while self._pool_next <= now + eps:
                drips += 1
                self._pool_next += _POOL_DRIP_PERIOD
            if drips and self._pool_rate > 0 and now >= self._onset:
                mean = self._pool_rate * _POOL_DRIP_PERIOD * drips
                cv = self._pool_cv
                sigma2 = np.log(1.0 + cv * cv)
                zn = self._rng.normals("pool", k * 2)
                nbytes = np.floor(batch_rng.lognormal(
                    zn, np.log(mean) - 0.5 * sigma2, np.sqrt(sigma2)))
                ok = self.pool_used + nbytes <= self.config.nonpaged_pool_bytes
                take = act & ok & (nbytes >= 1.0)
                self.pool_used = np.where(take, self.pool_used + nbytes, self.pool_used)
                pool_fail = act & ~ok & (nbytes >= 1.0)
                if np.any(pool_fail):
                    self.cum_alloc_failures += pool_fail
                    self._note_failure(pool_fail, np.full(self.n_hosts, 3, dtype=np.int8))

            # 2. ON/OFF phase toggles (renewal process on the absolute
            #    clock: no drift from tick quantisation).
            toggle = act[:, None] & (self.src_next <= now + eps)
            if np.any(toggle):
                u = self._rng.uniforms("onoff", k * self._S, lanes=self._S)
                mean = np.where(self.src_on, w.mean_off, w.mean_on)  # next phase
                dur = batch_rng.pareto_duration(u, w.pareto_shape, 1.0) * mean
                self.src_next = np.where(toggle, self.src_next + dur, self.src_next)
                self.src_on = np.where(toggle, ~self.src_on, self.src_on)

            # 3. Burst demand: ON sources allocate max(1, Poisson(rate*dt)).
            on = act[:, None] & self.src_on
            burst = np.zeros((self.n_hosts, self._S), dtype=np.int64)
            if np.any(on):
                ub2 = self._rng.uniforms("burst", k * 3 * self._S, lanes=self._S)
                zb = self._rng.normals(
                    "burst", k * 3 * self._S + self._S, lanes=self._S)
                pages = np.maximum(
                    batch_rng.poisson(w.on_rate_pages * dt, ub2, zb), 1)
                burst = np.where(on, pages, 0)
            burst_tot = burst.sum(axis=1)

            # 4. Session arrivals (Bernoulli-thinned Poisson process).
            us = self._rng.uniforms("sess", k * 8, lanes=3)
            zs = self._rng.normals("sess", k * 8 + 4)
            arrive = act & (us[:, 0] < w.session_rate * dt)
            sess_pages = np.zeros(self.n_hosts, dtype=np.int64)
            if np.any(arrive):
                pages = np.maximum(
                    np.floor(batch_rng.lognormal(zs, self._sess_mu, 1.0)), 8.0)
                sess_pages = np.where(arrive, pages.astype(np.int64), 0)

            # 5. Batch-job launches.
            batch_pages = np.zeros(self.n_hosts, dtype=np.int64)
            launch = None
            if self._batch is not None:
                period, bpages, run_time = self._batch
                launch = act & (self._batch_next <= now + eps)
                if np.any(launch):
                    ub = self._rng.uniforms("batch", k * 4, lanes=3)
                    self._batch_next = np.where(
                        launch,
                        self._batch_next + period * (0.9 + 0.2 * ub[:, 0]),
                        self._batch_next)
                    pages = np.maximum(
                        1, (bpages * (0.8 + 0.4 * ub[:, 1])).astype(np.int64))
                    batch_pages = np.where(launch, pages, 0)

            # 6. Aggregate allocation with partial fill, then trim/thrash.
            demand = burst_tot + sess_pages + batch_pages
            grant = self._allocate_aggregate(demand, k=k)
            ratio = np.where(demand > 0, grant / np.maximum(demand, 1), 0.0)

            # 7. Fragmentation erosion on listener-visible allocations.
            if self._frag_rate > 0:
                uf = self._rng.uniforms("frag", k)
                expected = self._frag_rate * grant * PAGE_SIZE
                self.frag_lost += np.where(
                    grant > 0, batch_rng.exponential(uf, expected), 0.0)

            # 8. Schedule releases (granted pages only) on the ring buffers.
            slot = k % self._B
            if np.any(on):
                uh = self._rng.uniforms("hold", k * self._S, lanes=self._S)
                hold = batch_rng.exponential(uh, w.hold_time)
                rel = np.floor(burst * ratio[:, None]).astype(np.int64)
                offs = np.clip(np.rint(hold / dt).astype(np.int64), 1, self._B - 1)
                sel = on & (rel > 0)
                if np.any(sel):
                    hosts, _ = np.nonzero(sel)
                    np.add.at(self._release_ring,
                              (hosts, (k + offs[sel]) % self._B), rel[sel])
            if np.any(arrive):
                sess_rel = np.floor(sess_pages * ratio).astype(np.int64)
                life = batch_rng.exponential(us[:, 1], w.session_lifetime)
                offs = np.clip(np.rint(life / dt).astype(np.int64), 1, self._B - 1)
                sel = arrive & (sess_rel > 0)
                hosts = np.flatnonzero(sel)
                np.add.at(self._release_ring,
                          (hosts, (k + offs[sel]) % self._B), sess_rel[sel])
                # Mid-life touch of 25% of the working set.
                tpages = (sess_rel * 0.25).astype(np.int64)
                toffs = np.clip(
                    np.rint(life * (0.2 + 0.6 * us[:, 2]) / dt).astype(np.int64),
                    1, self._B - 1)
                tsel = arrive & (tpages > 0)
                hosts = np.flatnonzero(tsel)
                np.add.at(self._touch_ring,
                          (hosts, (k + toffs[tsel]) % self._B), tpages[tsel])
            if launch is not None and np.any(launch):
                _, _, run_time = self._batch
                brel = np.floor(batch_pages * ratio).astype(np.int64)
                boffs = np.clip(
                    np.rint(run_time * (0.8 + 0.5 * ub[:, 2]) / dt).astype(np.int64),
                    1, self._B - 1)
                sel = launch & (brel > 0)
                hosts = np.flatnonzero(sel)
                np.add.at(self._release_ring,
                          (hosts, (k + boffs[sel]) % self._B), brel[sel])

            # 9. Due releases: leak listener pins its binomial share, the
            #    rest is freed.  Preload chunks bypass the leak listener
            #    exactly as in the object model.
            due = np.where(act, self._release_ring[:, slot], 0)
            self._release_ring[:, slot] = 0
            if np.any(due > 0):
                leaked = np.zeros(self.n_hosts, dtype=np.int64)
                if self._leak_frac > 0 and now >= self._onset:
                    ul = self._rng.uniforms("leak", k * 4)
                    zl = self._rng.normals("leak", k * 4 + 1)
                    leaked = batch_rng.binomial(due, self._leak_frac, ul, zl)
                    if np.any(leaked > 0):
                        self._pin(leaked)
                self._free(due - leaked)
            pre = self._preload_map.get(k)
            if pre and np.any(self._preload_enabled):
                self._free(np.where(act & self._preload_enabled, pre, 0))

            # 10. Due mid-life touches (hard faults under pressure).
            tdue = np.where(act, self._touch_ring[:, slot], 0)
            self._touch_ring[:, slot] = 0
            if np.any(tdue > 0):
                self._touch_in(tdue)

            # 11. Sample the perfmon counters on the sampling grid.
            if k % self._sample_every == 0:
                self._sample(k, act)
        if self._now < until:
            self._now = until

    def _sample(self, k: int, act: np.ndarray) -> None:
        interval = self._sample_every * self.dt
        pages_io = self.cum_in + self.cum_out
        vals = np.empty((self.n_hosts, len(COUNTER_NAMES)))
        vals[:, 0] = self._available() * float(PAGE_SIZE)
        vals[:, 1] = self.committed * float(PAGE_SIZE)
        vals[:, 2] = self._eff_limit() * float(PAGE_SIZE)
        vals[:, 3] = (pages_io - self._last_io) / interval
        vals[:, 4] = (self.cum_faults - self._last_faults) / interval
        vals[:, 5] = self.pool_used
        vals[:, 6] = self.resident * float(PAGE_SIZE)
        self._last_io = np.where(act, pages_io, self._last_io)
        self._last_faults = np.where(act, self.cum_faults, self._last_faults)
        self._n_samples += int(act.sum()) * len(COUNTER_NAMES)
        if not self._collect:
            return
        drop_p = self.config.sample_drop_probability
        if drop_p > 0:
            ud = self._rng.uniforms("sampler", k * 8, lanes=len(COUNTER_NAMES))
            vals[ud < drop_p] = np.nan
        slot = k // self._sample_every - 1
        idx = np.flatnonzero(act)
        self._traces[idx, slot, :] = vals[idx]

    # -- results ------------------------------------------------------------

    @profile("memsim.fleet_vec_run")
    def run(self) -> List[RunResult]:
        """Advance to the time budget and collect per-host results."""
        _log.info("vector fleet starting", n_hosts=self.n_hosts,
                  profile=self.config.os_profile, seed=self.config.seed,
                  budget_seconds=self._t_end)
        with _obs.span("fleet-vec-run", n_hosts=self.n_hosts,
                       seed=self.config.seed):
            self.advance(self._t_end)
        self._publish_metrics()
        return self.results()

    def _finalise_crashes(self) -> None:
        pending = (self.active & ~np.isnan(self.first_failure)
                   & (self.first_failure + self.crash_grace <= self._now + 1e-9))
        if np.any(pending):
            self.crash_time = np.where(
                pending, self.first_failure + self.crash_grace, self.crash_time)
            self.active &= ~pending

    def results(self) -> List[RunResult]:
        """Per-host :class:`~repro.memsim.machine.RunResult` list, in host
        order, with the same metadata keys as the object engine."""
        self._finalise_crashes()
        out: List[RunResult] = []
        for i in range(self.n_hosts):
            crashed = not np.isnan(self.crash_time[i])
            duration = float(self.crash_time[i]) if crashed else self._now
            metadata: Dict[str, float | str] = {
                "os_profile": self.config.os_profile,
                "seed": float(self._seeds[i]),
                "duration": duration,
                "engine": "vector",
            }
            if self._rejuvenations[i]:
                metadata["n_rejuvenations"] = float(len(self._rejuvenations[i]))
            reason = _REASONS.get(int(self.crash_reason[i]))
            if crashed:
                metadata["crash_time"] = float(self.crash_time[i])
                metadata["crash_reason"] = reason or "unknown"
                metadata["first_failure_time"] = float(self.first_failure[i])
            bundle = TraceBundle(metadata=metadata)
            if self._collect and self._n_slots > 0:
                for c, name in enumerate(COUNTER_NAMES):
                    col = self._traces[i, :, c]
                    valid = ~np.isnan(col)
                    if not np.any(valid):
                        continue
                    bundle.add(TimeSeries(
                        times=self._sample_grid[valid], values=col[valid],
                        name=name, units=_COUNTER_UNITS[name]))
            out.append(RunResult(
                bundle=bundle,
                crashed=crashed,
                crash_time=float(self.crash_time[i]) if crashed else None,
                crash_reason=reason if crashed else None,
                duration=duration,
                rejuvenation_times=tuple(self._rejuvenations[i]),
            ))
        return out

    def _publish_metrics(self) -> None:
        if not _obs.telemetry_enabled():
            return
        self._finalise_crashes()
        _obs.counter("memsim_vec.hosts").inc(self.n_hosts)
        _obs.counter("memsim_vec.host_ticks").inc(self._host_ticks)
        _obs.counter("memsim_vec.crashes").inc(
            int((~np.isnan(self.crash_time)).sum()))
        _obs.counter("memsim_vec.samples_collected").inc(self._n_samples)
        _obs.counter("memsim_vec.allocated_pages").inc(int(self.cum_allocated.sum()))
        _obs.counter("memsim_vec.freed_pages").inc(int(self.cum_freed.sum()))
        _obs.counter("memsim_vec.page_faults").inc(int(self.cum_faults.sum()))
        _obs.counter("memsim_vec.alloc_failures").inc(
            int(self.cum_alloc_failures.sum()))
        _obs.gauge("memsim_vec.leaked_pinned_pages").set(int(self.pinned.sum()))
        _obs.gauge("memsim_vec.survivors").set(int(self.active.sum()))
        _obs.histogram("memsim_vec.fleet_sim_seconds").observe(self._now)

    def check_invariants(self) -> None:
        """Vectorised analogue of ``MemoryManager.check_invariants``."""
        if np.any(self.resident < 0) or np.any(self.pagefile < 0):
            raise SimulationError("negative page accounting")
        if np.any(self.pinned < 0) or np.any(self.pinned > self.resident):
            raise SimulationError("pinned pages exceed resident")
        if np.any(self.committed > self.commit_limit_pages):
            raise SimulationError("commit exceeds hard limit")
        if np.any(self.pool_used > self.config.nonpaged_pool_bytes):
            raise SimulationError("nonpaged pool over capacity")
        if np.any(self.pagefile > self._pf_capacity):
            raise SimulationError("paging file over capacity")


# -- fleet drivers ----------------------------------------------------------


def _vector_fleet_unit(unit) -> List[RunResult]:
    """Pool entry point: one seed shard of a vector fleet."""
    config, seeds, crash_grace, dt, collect_traces, batch_job = unit
    fleet = VectorFleet(
        config, seeds=seeds, crash_grace=crash_grace, dt=dt,
        collect_traces=collect_traces, batch_job=batch_job)
    return fleet.run()


def run_fleet_vector(
    base_config: MachineConfig,
    n_runs: int,
    *,
    crash_grace: float = 120.0,
    workers: int = 1,
    dt: float = 1.0,
    collect_traces: bool = True,
    batch_job: Optional[Tuple[float, int, float]] = None,
) -> List[RunResult]:
    """Vector-engine drop-in for :func:`~repro.memsim.machine.run_fleet`.

    Host ``i`` uses seed ``base_config.seed + i``.  ``workers > 1``
    shards hosts across a process pool; counter-based seeding makes the
    result list bit-identical for every worker count (and identical to
    simulating each host alone).
    """
    if n_runs < 1:
        raise SimulationError(f"n_runs must be >= 1, got {n_runs}")
    from ..perf.pool import parallel_map

    seeds = [int(base_config.seed) + i for i in range(n_runs)]
    shards = max(1, min(int(workers), n_runs))
    bounds = np.linspace(0, n_runs, shards + 1).astype(int)
    units = [
        (base_config, tuple(seeds[a:b]), crash_grace, dt, collect_traces, batch_job)
        for a, b in zip(bounds[:-1], bounds[1:]) if b > a
    ]
    shard_results = parallel_map(_vector_fleet_unit, units, workers=workers,
                                 label="fleet-vec-worker")
    return [r for shard in shard_results for r in shard]


def build_scenario_fleet(
    name: str,
    n_hosts: int,
    *,
    seed: int = 0,
    profile: str = "nt4",
    max_run_seconds: float = 80_000.0,
    fault_factor: float = 1.0,
    config_overrides: Optional[dict] = None,
    crash_grace: float = 120.0,
    dt: float = 1.0,
    collect_traces: bool = True,
) -> VectorFleet:
    """Vector-engine counterpart of
    :func:`~repro.memsim.scenarios.build_scenario`: same named scenario,
    whole fleet at once (including the scenario's batch job)."""
    from .scenarios import scenario_batch_job, scenario_config

    config = scenario_config(
        name, seed=seed, profile=profile, max_run_seconds=max_run_seconds,
        fault_factor=fault_factor, config_overrides=config_overrides)
    return VectorFleet(
        config, n_hosts, crash_grace=crash_grace, dt=dt,
        collect_traces=collect_traces, batch_job=scenario_batch_job(name))
