"""Aging-fault models.

Software aging is the accumulation of *small, individually harmless*
errors in long-running software state.  Three mechanisms, matching the
fault taxonomy of the rejuvenation literature (Vaidyanathan & Trivedi):

* :class:`LeakProcess` — a workload listener that withholds a fraction
  of every release (heap leaks in server processes) and, as a kernel
  process, drips bursty allocations into the nonpaged pool (handle and
  driver-object leaks).
* :class:`FragmentationFault` — allocation churn slowly erodes usable
  commit capacity (allocator fragmentation / address-space pollution).

Both are deliberately *stochastic*: real leaks arrive in bursts tied to
request processing, which is exactly why trend-extrapolation baselines
are noisy and the paper's regularity-based indicator has something to
detect.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..simkernel import PeriodicProcess, RngRegistry, Simulator
from .config import FaultConfig
from .memory import MemoryManager


class LeakProcess(PeriodicProcess):
    """Heap-leak listener plus kernel-pool leak drip.

    As a :class:`~repro.memsim.workloads.WorkloadListener` it withholds
    ``heap_leak_fraction`` of every release (binomially, so small
    releases often leak nothing — leaks are lumpy).  As a periodic
    process it injects pool leaks whose sizes follow a gamma
    distribution with the configured burst coefficient of variation.
    """

    def __init__(
        self,
        sim: Simulator,
        rngs: RngRegistry,
        memory: MemoryManager,
        faults: FaultConfig,
        *,
        period: float = 5.0,
        on_failure: Optional[Callable[[str], None]] = None,
    ) -> None:
        super().__init__(sim, rngs, "fault.leak", period)
        self.memory = memory
        self.faults = faults
        self.on_failure = on_failure
        self.leaked_heap_pages = 0
        self.leaked_pool_bytes = 0.0

    # -- WorkloadListener ------------------------------------------------------

    def on_allocation(self, pages: int) -> None:
        """Leaks do not react to allocations."""
        return None

    def on_release(self, pages: int) -> int:
        """Withhold a binomial share of the released pages, pinning them.

        Leaked objects keep live references, so the pager can never
        evict them: each leak permanently shrinks usable physical
        memory, which is the gradual squeeze behind aging crashes.
        Inactive before the configured fault onset time.
        """
        if self.faults.heap_leak_fraction <= 0.0:
            return 0
        if self.sim.now < self.faults.fault_onset_time:
            return 0
        leaked = int(self.rng.binomial(pages, self.faults.heap_leak_fraction))
        if leaked > 0:
            self.leaked_heap_pages += leaked
            self.memory.pin(leaked)
        return leaked

    # -- periodic pool drip ------------------------------------------------------

    def tick(self) -> None:
        """Inject one pool-leak burst (mean rate * period bytes)."""
        if self.faults.pool_leak_rate <= 0.0:
            return
        if self.sim.now < self.faults.fault_onset_time:
            return
        mean_bytes = self.faults.pool_leak_rate * self.period
        cv = self.faults.pool_leak_burst_cv
        # Gamma with mean `mean_bytes` and the requested CV.
        shape = 1.0 / (cv * cv)
        scale = mean_bytes / shape
        nbytes = float(self.rng.gamma(shape, scale))
        if nbytes < 1.0:
            return
        result = self.memory.pool_allocate(nbytes)
        if result.ok:
            self.leaked_pool_bytes += nbytes
        elif self.on_failure is not None:
            self.on_failure(result.failure_reason or "pool")


class FragmentationFault:
    """Commit-capacity erosion proportional to allocation churn.

    A :class:`~repro.memsim.workloads.WorkloadListener` that converts
    every allocated page into a tiny expected loss of usable commit
    capacity: ``loss_bytes ~ fragmentation_rate * pages * PAGE_SIZE``
    with exponential jitter.  Over a multi-hour run this compounds into
    the slow squeeze real allocators exhibit.
    """

    def __init__(
        self,
        memory: MemoryManager,
        faults: FaultConfig,
        rng: np.random.Generator,
    ) -> None:
        self.memory = memory
        self.faults = faults
        self._rng = rng
        self.total_lost_bytes = 0.0

    def on_allocation(self, pages: int) -> None:
        """Erode capacity in proportion to this allocation's size."""
        if self.faults.fragmentation_rate <= 0.0:
            return
        from .config import PAGE_SIZE

        expected = self.faults.fragmentation_rate * pages * PAGE_SIZE
        loss = float(self._rng.exponential(expected)) if expected > 0 else 0.0
        if loss > 0:
            self.memory.add_fragmentation_loss(loss)
            self.total_lost_bytes += loss

    def on_release(self, pages: int) -> int:
        """Fragmentation never withholds pages."""
        return 0


class CompositeListener:
    """Fan a workload's callbacks out to several listeners.

    Leak decisions compose additively but are capped at the release
    size (a page can only be leaked once).
    """

    def __init__(self, *listeners) -> None:
        self.listeners = list(listeners)

    def on_allocation(self, pages: int) -> None:
        for listener in self.listeners:
            listener.on_allocation(pages)

    def on_release(self, pages: int) -> int:
        leaked = 0
        for listener in self.listeners:
            leaked += listener.on_release(pages - leaked)
            if leaked >= pages:
                return pages
        return leaked
