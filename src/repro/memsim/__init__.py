"""OS memory-subsystem simulator — the paper's testbed, as software.

The DSN'03 study stressed physical Windows NT 4.0 / Windows 2000 hosts
until they crashed, recording memory performance counters.  This package
replaces that testbed with a discrete-event simulation that preserves the
generative structure of those counters:

* a page-granular **memory manager** with physical frames, a commit
  limit backed by a paging file, kernel pools, working-set trimming and
  thrashing dynamics (:mod:`.memory`);
* a **heavy-tailed ON/OFF workload** whose superposition produces the
  long-range-dependent, bursty demand that makes real memory counters
  (multi)fractal (:mod:`.workloads`);
* **aging faults** — leaks in process heaps and kernel pools,
  allocator fragmentation — that slowly consume resources the way aging
  software does (:mod:`.faults`);
* a perfmon-style **counter sampler** with occasional dropped samples
  (:mod:`.sampler`);
* the :class:`~repro.memsim.machine.Machine` assembly that runs a
  stress-to-crash experiment and returns the trace bundle plus the
  ground-truth crash time (:mod:`.machine`).

Quick use::

    from repro.memsim import Machine, MachineConfig

    result = Machine(MachineConfig.nt4(seed=1)).run()
    print(result.crashed, result.crash_time)
    bundle = result.bundle          # TraceBundle of counters
"""

from .config import MachineConfig, WorkloadConfig, FaultConfig, OS_PROFILES
from .memory import MemoryManager, AllocationResult
from .workloads import OnOffSource, SessionWorkload, BatchWorkload
from .faults import LeakProcess, FragmentationFault
from .sampler import CounterSampler, COUNTER_NAMES
from .machine import Machine, RunResult, run_fleet, FLEET_ENGINES
from .fleet_vec import VectorFleet, run_fleet_vector, build_scenario_fleet
from .equivalence import (
    EquivalenceReport,
    check_batch_decomposition,
    check_cross_engine,
    fleet_equivalence_report,
    ks_2samp,
)
from .scenarios import (
    build_scenario,
    scenario_config,
    scenario_batch_job,
    SCENARIO_NAMES,
)
from .rejuvenation import (
    PeriodicRejuvenator,
    ThresholdRejuvenator,
    PredictiveRejuvenator,
    attach_policy,
)

__all__ = [
    "MachineConfig",
    "WorkloadConfig",
    "FaultConfig",
    "OS_PROFILES",
    "MemoryManager",
    "AllocationResult",
    "OnOffSource",
    "SessionWorkload",
    "BatchWorkload",
    "LeakProcess",
    "FragmentationFault",
    "CounterSampler",
    "COUNTER_NAMES",
    "Machine",
    "RunResult",
    "run_fleet",
    "FLEET_ENGINES",
    "VectorFleet",
    "run_fleet_vector",
    "build_scenario_fleet",
    "EquivalenceReport",
    "check_batch_decomposition",
    "check_cross_engine",
    "fleet_equivalence_report",
    "ks_2samp",
    "scenario_config",
    "scenario_batch_job",
    "PeriodicRejuvenator",
    "ThresholdRejuvenator",
    "PredictiveRejuvenator",
    "attach_policy",
    "build_scenario",
    "SCENARIO_NAMES",
]
