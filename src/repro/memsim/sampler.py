"""Perfmon-style performance-counter sampler.

Samples the memory manager once per interval and accumulates a
Windows-flavoured counter set:

========================  =====================================================
``AvailableBytes``        free physical memory
``CommittedBytes``        total commit charge
``CommitLimitBytes``      effective commit ceiling (shrinks with fragmentation)
``PagesPerSec``           hard paging I/O rate (in + out) over the interval
``PageFaultsPerSec``      all faults (soft + hard) over the interval
``PoolNonpagedBytes``     kernel nonpaged pool usage
``WorkingSetBytes``       total user residency
========================  =====================================================

Rates are derived by differencing the manager's cumulative counters, the
way perfmon derives per-second counters from raw totals.  Each sample is
independently dropped with a small probability, producing the gapped
traces real collectors emit under load.
"""

from __future__ import annotations

from typing import Dict, List

from ..simkernel import PeriodicProcess, RngRegistry, Simulator
from ..trace.series import TimeSeries, TraceBundle
from .config import MachineConfig, PAGE_SIZE
from .memory import MemoryManager

COUNTER_NAMES = (
    "AvailableBytes",
    "CommittedBytes",
    "CommitLimitBytes",
    "PagesPerSec",
    "PageFaultsPerSec",
    "PoolNonpagedBytes",
    "WorkingSetBytes",
)

_COUNTER_UNITS = {
    "AvailableBytes": "bytes",
    "CommittedBytes": "bytes",
    "CommitLimitBytes": "bytes",
    "PagesPerSec": "pages/s",
    "PageFaultsPerSec": "faults/s",
    "PoolNonpagedBytes": "bytes",
    "WorkingSetBytes": "bytes",
}


class CounterSampler(PeriodicProcess):
    """Collect one sample of every counter per sampling interval."""

    def __init__(
        self,
        sim: Simulator,
        rngs: RngRegistry,
        memory: MemoryManager,
        config: MachineConfig,
    ) -> None:
        super().__init__(sim, rngs, "sampler", config.sampling_interval,
                         phase=config.sampling_interval)
        self.memory = memory
        self.config = config
        self._times: Dict[str, List[float]] = {name: [] for name in COUNTER_NAMES}
        self._values: Dict[str, List[float]] = {name: [] for name in COUNTER_NAMES}
        self._last_pages_io = 0
        self._last_faults = 0

    def tick(self) -> None:
        """Read every counter; drop individual samples with small probability."""
        mem = self.memory
        interval = self.period
        pages_io = mem.cum_pages_in + mem.cum_pages_out
        faults = mem.cum_page_faults
        snapshot = {
            "AvailableBytes": float(mem.available_bytes),
            "CommittedBytes": float(mem.committed_pages * PAGE_SIZE),
            "CommitLimitBytes": float(mem.effective_commit_limit_pages * PAGE_SIZE),
            "PagesPerSec": (pages_io - self._last_pages_io) / interval,
            "PageFaultsPerSec": (faults - self._last_faults) / interval,
            "PoolNonpagedBytes": float(mem.pool_used_bytes),
            "WorkingSetBytes": float(mem.resident_pages * PAGE_SIZE),
        }
        self._last_pages_io = pages_io
        self._last_faults = faults

        now = self.sim.now
        drop_p = self.config.sample_drop_probability
        for name, value in snapshot.items():
            if drop_p > 0 and self.rng.random() < drop_p:
                continue  # collector missed this sample
            self._times[name].append(now)
            self._values[name].append(value)

    def n_samples(self, counter: str = "AvailableBytes") -> int:
        """Samples collected so far for ``counter``."""
        return len(self._times[counter])

    def samples_of(self, counter: str) -> tuple[list, list]:
        """Live view of (times, values) collected so far for ``counter``.

        Used by online controllers that tail the counter stream during
        the simulation; the returned lists keep growing as sampling
        continues, so callers should track how far they have read.
        """
        if counter not in self._times:
            from ..exceptions import TraceError

            raise TraceError(f"unknown counter {counter!r}")
        return self._times[counter], self._values[counter]

    def read_since(self, counter: str, cursor: int) -> tuple[list, list, int]:
        """Samples of ``counter`` collected after position ``cursor``.

        The tailing primitive for live observers: returns
        ``(new_times, new_values, new_cursor)``, where feeding the
        returned cursor back yields only samples collected in between.
        """
        times, values = self.samples_of(counter)
        if cursor < 0:
            from ..exceptions import TraceError

            raise TraceError(f"cursor must be non-negative, got {cursor}")
        return times[cursor:], values[cursor:], len(times)

    def to_bundle(self, metadata: Dict[str, float | str]) -> TraceBundle:
        """Freeze the collected samples into a :class:`TraceBundle`."""
        bundle = TraceBundle(metadata=dict(metadata))
        for name in COUNTER_NAMES:
            if not self._times[name]:
                continue
            bundle.add(TimeSeries(
                times=self._times[name],
                values=self._values[name],
                name=name,
                units=_COUNTER_UNITS[name],
            ))
        return bundle
