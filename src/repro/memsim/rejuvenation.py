"""In-simulation rejuvenation policies.

The application layer the aging-detection literature motivates: act on
warnings *before* the crash.  Three controllers, all running inside the
simulation next to the workload:

* :class:`PeriodicRejuvenator` — restart on a fixed timer (classical
  time-based rejuvenation; wastes restarts on healthy machines, still
  crashes when aging outpaces the timer).
* :class:`ThresholdRejuvenator` — restart when `AvailableBytes` stays
  below a floor (the naive operator rule as a controller).
* :class:`PredictiveRejuvenator` — restart when the **online
  multifractal monitor** (:class:`repro.core.online.OnlineAgingMonitor`)
  raises its Hölder-shift alarm: the paper's method closed into a
  control loop.

Each controller counts its restarts; together with the machine's crash
outcome this gives the availability comparison of benchmark A3.
"""

from __future__ import annotations

from typing import Optional

from .._validation import check_positive
from ..core.online import OnlineAgingMonitor
from ..obs import get_logger
from ..obs import session as _obs
from ..simkernel import PeriodicProcess, RngRegistry, Simulator
from .machine import Machine

_log = get_logger("memsim.rejuvenation")


class PeriodicRejuvenator(PeriodicProcess):
    """Restart the machine every ``interval`` simulated seconds."""

    def __init__(self, sim: Simulator, rngs: RngRegistry, machine: Machine,
                 interval: float) -> None:
        check_positive(interval, name="interval")
        super().__init__(sim, rngs, "rejuv.periodic", interval)
        self.machine = machine
        self.restarts = 0

    def tick(self) -> None:
        self.machine.rejuvenate()
        self.restarts += 1
        _log.info("periodic restart", sim_time=self.sim.now,
                  restarts=self.restarts)
        _obs.counter("rejuvenation.periodic_restarts").inc()


class ThresholdRejuvenator(PeriodicProcess):
    """Restart when free memory stays below ``floor_bytes``.

    Checks every ``check_interval`` seconds; requires
    ``consecutive_checks`` consecutive low readings (debounce), then
    restarts and resets the debounce counter.
    """

    def __init__(self, sim: Simulator, rngs: RngRegistry, machine: Machine,
                 *, floor_bytes: float, check_interval: float = 30.0,
                 consecutive_checks: int = 4) -> None:
        check_positive(floor_bytes, name="floor_bytes")
        check_positive(check_interval, name="check_interval")
        super().__init__(sim, rngs, "rejuv.threshold", check_interval)
        self.machine = machine
        self.floor_bytes = float(floor_bytes)
        self.consecutive_checks = int(consecutive_checks)
        self._low_streak = 0
        self.restarts = 0

    def tick(self) -> None:
        if self.machine.memory.available_bytes < self.floor_bytes:
            self._low_streak += 1
        else:
            self._low_streak = 0
        if self._low_streak >= self.consecutive_checks:
            self.machine.rejuvenate()
            self.restarts += 1
            self._low_streak = 0
            _log.info("threshold restart", sim_time=self.sim.now,
                      floor_bytes=self.floor_bytes, restarts=self.restarts)
            _obs.counter("rejuvenation.threshold_restarts").inc()


class PredictiveRejuvenator(PeriodicProcess):
    """Restart when the online multifractal monitor alarms.

    Every ``check_interval`` seconds the controller drains the sampler's
    newly collected `AvailableBytes` samples into an
    :class:`OnlineAgingMonitor`; on alarm it rejuvenates the machine and
    re-arms with a fresh monitor (the restarted software needs a fresh
    healthy baseline).
    """

    def __init__(self, sim: Simulator, rngs: RngRegistry, machine: Machine,
                 *, check_interval: float = 60.0,
                 monitor_factory=None) -> None:
        check_positive(check_interval, name="check_interval")
        super().__init__(sim, rngs, "rejuv.predictive", check_interval)
        self.machine = machine
        # Tighter-than-default monitor geometry: calibration must finish
        # while the freshly (re)started software is still healthy (within
        # ~2000 samples at 1 Hz), and the CUSUM is set more hair-trigger
        # than the offline default — in a control loop a spurious restart
        # costs seconds while a missed one costs a crash.
        self._monitor_factory = monitor_factory or (lambda: OnlineAgingMonitor(
            chunk_size=128, history=1024, indicator_window=512,
            n_warmup=1, n_calibration=6, cusum_k=1.0, cusum_h=5.0,
        ))
        self.monitor: OnlineAgingMonitor = self._monitor_factory()
        self._fed = 0
        self.restarts = 0
        self.alarm_times: list[float] = []

    def tick(self) -> None:
        times, values = self.machine.sampler.samples_of("AvailableBytes")
        new_t = times[self._fed:]
        new_v = values[self._fed:]
        self._fed = len(times)
        if not new_t:
            return
        if self.monitor.update_many(new_t, new_v):
            self.alarm_times.append(self.sim.now)
            _log.info("predictive restart: online monitor alarmed",
                      sim_time=self.sim.now,
                      monitor_alarm_time=self.monitor.alarm_time,
                      restarts=self.restarts + 1)
            _obs.record_event("predictive_restart", sim_time=self.sim.now,
                              monitor_alarm_time=self.monitor.alarm_time)
            _obs.counter("rejuvenation.predictive_restarts").inc()
            self.machine.rejuvenate()
            self.restarts += 1
            self.monitor = self._monitor_factory()


def attach_policy(machine: Machine, policy: str, **kwargs) -> Optional[PeriodicProcess]:
    """Construct, attach and start a named policy on a machine.

    ``policy`` is ``"none"``, ``"periodic"``, ``"threshold"`` or
    ``"predictive"``; ``kwargs`` go to the controller's constructor.
    Must be called before :meth:`Machine.run`.
    """
    if policy == "none":
        return None
    if policy == "periodic":
        controller = PeriodicRejuvenator(machine.sim, machine.rngs, machine, **kwargs)
    elif policy == "threshold":
        controller = ThresholdRejuvenator(machine.sim, machine.rngs, machine, **kwargs)
    elif policy == "predictive":
        controller = PredictiveRejuvenator(machine.sim, machine.rngs, machine, **kwargs)
    else:
        from ..exceptions import ValidationError

        raise ValidationError(
            f"unknown policy {policy!r}; expected none/periodic/threshold/predictive"
        )
    controller.ensure_started()
    return controller
