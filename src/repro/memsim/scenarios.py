"""Named machine scenarios.

Pre-tuned machine builders for the workload archetypes the aging
literature studies, formalising what the examples assemble by hand.
Every scenario returns a ready-to-run :class:`~repro.memsim.machine.
Machine`; extra components (e.g. a batch job) are attached and started.

========== ============================================================
scenario    what it models
========== ============================================================
``stress``  the paper's stress testbed (default Machine, unchanged)
``webserver``  an httperf-loaded Apache-class server: many short
            bursts, keep-alive sessions, hourly log-rotation batch job
``database``  few, large, long-lived allocations (buffer pools) with a
            nightly maintenance job; slower but chunkier aging
``batch``   a compute/batch box dominated by periodic heavyweight jobs
========== ============================================================
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from .._validation import check_choice
from .config import MachineConfig, WorkloadConfig
from .machine import Machine
from .workloads import BatchWorkload

SCENARIO_NAMES = ("stress", "webserver", "database", "batch")

_WEBSERVER_WORKLOAD = WorkloadConfig(
    n_sources=24,
    pareto_shape=1.3,
    mean_on=8.0,
    mean_off=16.0,
    on_rate_pages=40.0,
    hold_time=15.0,
    session_rate=0.08,
    session_pages_mean=300.0,
    session_lifetime=180.0,
)

_DATABASE_WORKLOAD = WorkloadConfig(
    n_sources=6,
    pareto_shape=1.5,
    mean_on=60.0,
    mean_off=90.0,
    on_rate_pages=40.0,
    hold_time=60.0,           # buffer pages linger
    session_rate=0.01,        # few, heavy connections
    session_pages_mean=1200.0,
    session_lifetime=800.0,
)

_BATCH_WORKLOAD = WorkloadConfig(
    n_sources=4,
    pareto_shape=1.6,
    mean_on=15.0,
    mean_off=45.0,
    on_rate_pages=30.0,
    hold_time=20.0,
    session_rate=0.02,
    session_pages_mean=400.0,
    session_lifetime=240.0,
)


# Scenario batch jobs: (period, pages, run_time); shared by the object
# and vector engines so both attach identical periodic components.
_SCENARIO_BATCH_JOBS = {
    "webserver": (3600.0, 4000, 90.0),
    "database": (7200.0, 9000, 300.0),
    "batch": (1200.0, 8000, 240.0),
}


def scenario_config(
    name: str,
    *,
    seed: int = 0,
    profile: str = "nt4",
    max_run_seconds: float = 80_000.0,
    fault_factor: float = 1.0,
    config_overrides: Optional[dict] = None,
) -> MachineConfig:
    """The :class:`MachineConfig` a named scenario runs with.

    Shared by :func:`build_scenario` (object engine) and
    :func:`repro.memsim.fleet_vec.build_scenario_fleet` (vector engine)
    so engine selection cannot drift the experiment definition.
    """
    check_choice(name, name="name", choices=SCENARIO_NAMES)
    check_choice(profile, name="profile", choices=("nt4", "w2k"))
    ctor = MachineConfig.nt4 if profile == "nt4" else MachineConfig.w2k
    base = ctor(seed=seed, max_run_seconds=max_run_seconds)

    workload = {
        "stress": base.workload,
        "webserver": _WEBSERVER_WORKLOAD,
        "database": _DATABASE_WORKLOAD,
        "batch": _BATCH_WORKLOAD,
    }[name]
    overrides = dict(config_overrides or {})
    overrides.setdefault("workload", workload)
    if fault_factor != 1.0:
        overrides.setdefault("faults", base.faults.scaled(fault_factor))
    return replace(base, **overrides)


def scenario_batch_job(name: str):
    """The scenario's periodic batch job as ``(period, pages, run_time)``,
    or None for scenarios without one."""
    check_choice(name, name="name", choices=SCENARIO_NAMES)
    return _SCENARIO_BATCH_JOBS.get(name)


def build_scenario(
    name: str,
    *,
    seed: int = 0,
    profile: str = "nt4",
    max_run_seconds: float = 80_000.0,
    fault_factor: float = 1.0,
    config_overrides: Optional[dict] = None,
) -> Machine:
    """Build a ready-to-run machine for a named scenario.

    Parameters
    ----------
    name:
        One of :data:`SCENARIO_NAMES`.
    seed, profile, max_run_seconds:
        Passed through to the machine configuration.
    fault_factor:
        Scales every aging-fault intensity (1.0 = defaults).
    config_overrides:
        Extra :class:`MachineConfig` fields to replace.
    """
    config = scenario_config(
        name, seed=seed, profile=profile, max_run_seconds=max_run_seconds,
        fault_factor=fault_factor, config_overrides=config_overrides)
    machine = Machine(config)

    job = _SCENARIO_BATCH_JOBS.get(name)
    if job is not None:
        period, pages, run_time = job
        _attach_batch(machine, period=period, pages=pages, run_time=run_time)
    return machine


def _attach_batch(machine: Machine, *, period: float, pages: int,
                  run_time: float) -> BatchWorkload:
    job = BatchWorkload(
        machine.sim, machine.rngs, "batch.job", machine.memory,
        period=period, pages=pages, run_time=run_time,
        on_failure=machine.note_failure,
    )
    job.ensure_started()
    return job
