"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.  Each
subsystem raises the most specific subclass that applies:

* :class:`ValidationError` -- a caller passed an argument that fails the
  documented contract (wrong shape, out-of-range value, bad enum member).
* :class:`AnalysisError` -- a numerical analysis could not be carried out
  on the given data (too short, degenerate scaling region, all-NaN input).
* :class:`SimulationError` -- an inconsistency inside the simulator that
  indicates a bug or an impossible configuration, *not* a simulated crash
  (simulated crashes are modelled as results, never as exceptions).
* :class:`TraceError` -- malformed trace data or trace file.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every intentional error raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An argument violates a documented precondition.

    Inherits :class:`ValueError` so that generic callers that guard with
    ``except ValueError`` keep working.
    """


class AnalysisError(ReproError, RuntimeError):
    """A numerical analysis failed on the supplied data.

    Typical causes: a series shorter than the minimum the estimator needs,
    a scaling regression with fewer than two usable scales, or data whose
    fluctuations are exactly zero (so logarithms are undefined).
    """


class SimulationError(ReproError, RuntimeError):
    """The simulator reached an internally inconsistent state.

    This always indicates a configuration impossible to honour or a bug in
    the simulator itself.  A simulated OS crash is a normal outcome and is
    reported through :class:`repro.memsim.machine.RunResult`, never raised.
    """


class TraceError(ReproError, ValueError):
    """Trace data or a trace file is malformed."""


class ExecutionError(ReproError, RuntimeError):
    """A work unit failed permanently during resilient execution.

    Raised when a pool unit exhausts its retry budget (timeout, worker
    death, or a retryable exception on every attempt), or when a
    campaign that was not asked to tolerate partial results ends with
    missing cells.  The message names the failed units so an operator
    can decide between ``--resume`` and investigation.
    """
