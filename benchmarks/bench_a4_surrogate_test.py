"""A4 — surrogate-data check: is the counters' multifractality genuine?

A wide singularity spectrum can be mimicked by heavy-tailed marginals or
plain linear LRD.  Following the standard surrogate methodology, the
MFDFA spectrum width of the simulated `AvailableBytes` increments is
compared against IAAFT surrogates (same marginal, same linear
correlations).  Shape claims: the counter beats its surrogates (genuine
nonlinear/multifractal structure, as the paper asserts for real memory
counters), while a Gaussian LRD control does not.
"""

import numpy as np

from repro.fractal import multifractality_test
from repro.generators import fgn
from repro.report import render_table
from repro.trace import fill_gaps, resample_uniform


def _compute(fleet):
    rows = []
    for run in fleet[:3]:
        counter = resample_uniform(fill_gaps(run.bundle["AvailableBytes"]))
        increments = np.diff(counter.values)
        result = multifractality_test(
            increments, kind="iaaft", n_surrogates=12,
            rng=np.random.default_rng(int(run.bundle.metadata["seed"])),
        )
        rows.append(["AvailableBytes", int(run.bundle.metadata["seed"]),
                     result.statistic_data,
                     float(np.mean(result.statistic_surrogates)),
                     result.z_score])
    control = fgn(2**13, 0.8, rng=np.random.default_rng(99))
    result = multifractality_test(
        control, kind="iaaft", n_surrogates=12, rng=np.random.default_rng(100))
    rows.append(["fGn control (H=0.8)", 99, result.statistic_data,
                 float(np.mean(result.statistic_surrogates)), result.z_score])
    return rows


def test_a4_surrogate_test(benchmark, nt4_fleet):
    rows = benchmark.pedantic(_compute, args=(nt4_fleet,), rounds=1, iterations=1)
    print("\n" + render_table(
        ["series", "seed", "width_data", "width_surrogates_mean", "z"],
        rows, title="A4: surrogate test of counter multifractality (IAAFT)",
    ))

    counter_rows = [r for r in rows if r[0] == "AvailableBytes"]
    control_row = rows[-1]
    significant = sum(1 for r in counter_rows if r[4] > 2.0)
    assert significant >= 2, \
        "counter multifractality must beat IAAFT surrogates in most runs"
    assert control_row[4] < min(r[4] for r in counter_rows), \
        "the Gaussian control must score below every counter"
