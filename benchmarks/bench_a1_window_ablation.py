"""A1 — ablation: indicator window size and Hölder scale band.

DESIGN.md calls out the detector's two main knobs: the sliding-window
length of the indicator and the wavelet scale band of the local Hölder
estimator.  This ablation sweeps both on a fixed crash fleet and reports
detection rate and median lead per setting.  Shape claim: detection is
robust over a wide band of sensible settings (no knife-edge tuning).
"""

from repro.core import analyze_counter
from repro.report import render_table
from repro.stats import score_detections


def _score(runs, **kwargs):
    alarms, crashes = [], []
    for run in runs:
        analysis = analyze_counter(run.bundle["AvailableBytes"], **kwargs)
        alarms.append(analysis.alarm.alarm_time)
        crashes.append(run.crash_time)
    return score_detections(alarms, crashes, min_lead=60.0, max_lead_fraction=0.95)


def _compute(fleet):
    rows = []
    for window in (256, 512, 1024):
        outcome = _score(fleet, indicator_window=window)
        rows.append([f"window={window}", outcome.n_detected, outcome.n_premature,
                     outcome.n_missed, outcome.median_lead_time])
    for max_scale in (16.0, 32.0, 64.0):
        outcome = _score(fleet, holder_kwargs={"max_scale": max_scale})
        rows.append([f"max_scale={max_scale:.0f}", outcome.n_detected,
                     outcome.n_premature, outcome.n_missed,
                     outcome.median_lead_time])
    return rows


def test_a1_window_ablation(benchmark, nt4_fleet):
    rows = benchmark.pedantic(_compute, args=(nt4_fleet,), rounds=1, iterations=1)
    print("\n" + render_table(
        ["setting", "detected", "premature", "missed", "median_lead_s"],
        rows, title="A1: detector ablation over window and scale band "
                    f"({len(nt4_fleet)} runs)",
    ))

    n = len(nt4_fleet)
    good = sum(1 for row in rows if row[1] >= 0.5 * n)
    assert good >= len(rows) - 1, \
        "detection must hold over most of the knob range (no knife edge)"
