"""T2 — multifractality indicators: healthy vs aged trace segments.

Regenerates the paper's aged-vs-healthy comparison: the generalized-
Hurst span (h(q_min) - h(q_max)) and the Legendre spectrum width of a
memory counter, computed separately on the healthy head and the aged
tail of each crash run.  Shape claim: aging changes the multifractal
signature — the aged segment's spectrum shifts/widens consistently
across runs.
"""

import numpy as np

from repro.fractal import legendre_spectrum, mfdfa
from repro.report import render_table
from repro.trace import fill_gaps, resample_uniform

_Q = np.linspace(-3.0, 3.0, 13)


def _segment_metrics(values):
    res = mfdfa(np.diff(values), q=_Q)
    spec = legendre_spectrum(res.q, res.tau)
    return res.hurst, res.delta_h, spec.width, spec.alpha_peak


def _compute(fleet):
    rows = []
    for run in fleet:
        counter = resample_uniform(fill_gaps(run.bundle["AvailableBytes"]))
        n = len(counter)
        healthy = counter.values[: int(0.45 * n)]
        aged = counter.values[int(0.55 * n):]
        h_row = _segment_metrics(healthy)
        a_row = _segment_metrics(aged)
        rows.append((run.bundle.metadata["seed"], h_row, a_row))
    return rows


def test_t2_spectrum_width(benchmark, nt4_fleet):
    rows = benchmark.pedantic(_compute, args=(nt4_fleet,), rounds=1, iterations=1)

    table = []
    for seed, h_row, a_row in rows:
        table.append([
            int(seed),
            h_row[0], a_row[0],           # h(2) healthy vs aged
            h_row[1], a_row[1],           # delta_h
            h_row[2], a_row[2],           # spectrum width
        ])
    print("\n" + render_table(
        ["seed", "h2_healthy", "h2_aged", "dH_healthy", "dH_aged",
         "width_healthy", "width_aged"],
        table,
        title="T2: multifractality of AvailableBytes, healthy head vs aged tail",
    ))

    # Shape claim: the aged segments' generalized Hurst h(2) drops
    # (counter roughens) in the majority of runs, and every segment is
    # genuinely multifractal (non-trivial spectrum width).
    drops = sum(1 for __, h_row, a_row in rows if a_row[0] < h_row[0])
    assert drops >= len(rows) * 0.6, "aging must roughen the counter in most runs"
    for __, h_row, a_row in rows:
        assert h_row[2] > 0.2 and a_row[2] > 0.2
