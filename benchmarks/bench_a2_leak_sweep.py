"""A2 — ablation: aging-fault intensity sweep.

Scales every aging-fault intensity by a factor and measures time to
crash and detectability.  Shape claims: crash time decreases
monotonically (up to noise) with fault intensity, and the detector keeps
finding the aging signature as it slows down.
"""

from repro.core import analyze_counter
from repro.memsim import Machine, MachineConfig
from repro.report import render_table

_FACTORS = (0.5, 1.0, 2.0)
_SEEDS = (11, 12)


def _compute():
    rows = []
    for factor in _FACTORS:
        crashes, leads = [], []
        for seed in _SEEDS:
            base = MachineConfig.nt4(seed=seed, max_run_seconds=120_000)
            config = MachineConfig.nt4(
                seed=seed, max_run_seconds=120_000,
                faults=base.faults.scaled(factor),
            )
            result = Machine(config).run()
            crashes.append(result.crash_time if result.crashed else None)
            if result.crashed:
                analysis = analyze_counter(result.bundle["AvailableBytes"])
                if analysis.alarm.fired:
                    leads.append(result.crash_time - analysis.alarm.alarm_time)
        mean_crash = (sum(c for c in crashes if c) / max(sum(1 for c in crashes if c), 1))
        rows.append([
            factor,
            sum(1 for c in crashes if c), len(crashes),
            mean_crash,
            len(leads),
            sum(leads) / len(leads) if leads else float("nan"),
        ])
    return rows


def test_a2_leak_sweep(benchmark):
    rows = benchmark.pedantic(_compute, rounds=1, iterations=1)
    print("\n" + render_table(
        ["fault_factor", "crashed", "runs", "mean_crash_time_s",
         "detected", "mean_lead_s"],
        rows, title="A2: aging-fault intensity sweep",
    ))

    # Shape claims: every intensity still crashes the host within budget,
    # faster aging means earlier crashes, and detection survives the sweep.
    assert all(row[1] == row[2] for row in rows), "all runs must crash"
    crash_times = [row[3] for row in rows]
    assert crash_times[0] > crash_times[-1], \
        "stronger faults must crash the host sooner"
    assert all(row[4] >= 1 for row in rows), \
        "the detector must find the aging signature at every intensity"
