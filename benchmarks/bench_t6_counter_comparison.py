"""T6 — which counters warn, and which warn first.

The paper monitored several memory counters side by side.  This table
runs the identical analysis chain on each counter of every crash run
and reports, per counter: how often it warned, its median lead, and how
often it was the *first* to warn.  Shape claims: AvailableBytes (the
paper's primary counter) is a reliable early warner, and combining
counters (run-level first alarm) detects every run at least as well as
any single counter.
"""

import numpy as np

from repro.core import analyze_run
from repro.report import render_kv, render_table

_COUNTERS = ("AvailableBytes", "PagesPerSec", "PoolNonpagedBytes")


def _compute(fleet):
    per_run = []
    for run in fleet:
        report = analyze_run(run.bundle, counters=list(_COUNTERS))
        alarms = {
            name: report.analyses[name].alarm.alarm_time
            for name in _COUNTERS
        }
        per_run.append((run.crash_time, alarms, report.first_alarm_time))
    return per_run


def test_t6_counter_comparison(benchmark, nt4_fleet):
    per_run = benchmark.pedantic(_compute, args=(nt4_fleet,), rounds=1, iterations=1)

    rows = []
    for name in _COUNTERS:
        leads = [crash - alarms[name]
                 for crash, alarms, __ in per_run
                 if alarms[name] is not None and alarms[name] < crash]
        firsts = sum(
            1 for __, alarms, first in per_run
            if first is not None and alarms[name] == first
        )
        rows.append([
            name, len(leads), len(per_run),
            float(np.median(leads)) if leads else float("nan"),
            firsts,
        ])
    print("\n" + render_table(
        ["counter", "warned", "runs", "median_lead_s", "first_to_warn"],
        rows, title="T6: per-counter warning behaviour (NT4 fleet)",
    ))

    combined_detected = sum(
        1 for crash, __, first in per_run if first is not None and first < crash
    )
    print(render_kv(
        {"combined_detection": f"{combined_detected}/{len(per_run)}"},
        title="T6 aggregate",
    ))

    by_name = {row[0]: row for row in rows}
    avail = by_name["AvailableBytes"]
    assert avail[1] >= 0.8 * avail[2], "AvailableBytes must warn in most runs"
    best_single = max(row[1] for row in rows)
    assert combined_detected >= best_single, \
        "combining counters must not lose detections"
