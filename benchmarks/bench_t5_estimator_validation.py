"""T5 — estimator validation on ground-truth synthetic signals.

The table the paper's methodology implicitly relies on: every exponent
estimator in the library recovers the analytically known exponents of
synthetic generators.  Bias and RMSE over several seeds for:

* Hurst estimators on fGn with H in {0.3, 0.5, 0.7, 0.9};
* MFDFA tau(q) on the binomial cascade (closed form) and the MRW;
* wavelet local Hölder estimation on fBm and Weierstrass signals.
"""

import numpy as np

from repro.core import wavelet_holder
from repro.fractal import dfa, mfdfa, partition_function_tau, wavelet_variance_hurst
from repro.generators import (
    binomial_cascade,
    binomial_cascade_tau,
    fbm,
    fgn,
    mrw,
    mrw_tau,
    weierstrass,
)
from repro.report import render_table

_SEEDS = (0, 1, 2)
_N = 2**14


def _hurst_rows():
    rows = []
    for h_true in (0.3, 0.5, 0.7, 0.9):
        for name, estimator in (("dfa", lambda x: dfa(x).alpha),
                                ("wavelet", lambda x: wavelet_variance_hurst(x).h)):
            errors = []
            for seed in _SEEDS:
                x = fgn(_N, h_true, rng=np.random.default_rng(seed))
                errors.append(estimator(x) - h_true)
            errors = np.asarray(errors)
            rows.append([f"fGn H={h_true}", name, h_true,
                         h_true + errors.mean(), float(np.sqrt(np.mean(errors**2)))])
    return rows


def _tau_rows():
    rows = []
    q = np.linspace(-2.0, 3.0, 11)
    # Binomial cascade via box partition function (exact theory).
    errs = []
    for seed in _SEEDS:
        mu = binomial_cascade(14, 0.7, rng=np.random.default_rng(seed))
        q_out, tau, __ = partition_function_tau(mu, q=q)
        errs.append(np.max(np.abs(tau - binomial_cascade_tau(q_out, 0.7))))
    rows.append(["binomial cascade", "partition tau(q)", 0.0,
                 float(np.mean(errs)), float(np.sqrt(np.mean(np.square(errs))))])
    # MRW via MFDFA.
    errs = []
    for seed in _SEEDS:
        x = mrw(2**15, 0.3, rng=np.random.default_rng(seed))
        res = mfdfa(np.diff(x), q=q)
        sel = (res.q >= 0) & (res.q <= 3)
        errs.append(np.max(np.abs(res.tau[sel] - mrw_tau(res.q, 0.3)[sel])))
    rows.append(["MRW lam=0.3", "mfdfa tau(q), q in [0,3]", 0.0,
                 float(np.mean(errs)), float(np.sqrt(np.mean(np.square(errs))))])
    return rows


def _holder_rows():
    rows = []
    for h_true in (0.3, 0.5, 0.7):
        w = weierstrass(2**13, h_true)
        h_est = wavelet_holder(w)
        rows.append([f"Weierstrass h={h_true}", "wavelet holder", h_true,
                     float(np.mean(h_est)), float(np.std(h_est))])
    for h_true in (0.4, 0.6, 0.8):
        x = fbm(_N, h_true, rng=np.random.default_rng(7))
        h_est = wavelet_holder(x)
        rows.append([f"fBm H={h_true}", "wavelet holder", h_true,
                     float(np.median(h_est)), float(np.std(h_est))])
    return rows


def _compute():
    return _hurst_rows() + _tau_rows() + _holder_rows()


def test_t5_estimator_validation(benchmark):
    rows = benchmark.pedantic(_compute, rounds=1, iterations=1)
    print("\n" + render_table(
        ["signal", "estimator", "truth", "estimate (mean err for tau)", "spread/RMSE"],
        rows, title="T5: estimator validation on ground-truth signals",
    ))

    # Hurst estimators within 0.1 of truth.
    for row in rows:
        if row[0].startswith("fGn"):
            assert abs(row[3] - row[2]) < 0.1, row
    # tau errors bounded.
    for row in rows:
        if "tau" in row[1]:
            assert row[3] < 0.3, row
    # Hölder estimates within 0.1 of the uniform truth.
    for row in rows:
        if "holder" in row[1]:
            assert abs(row[3] - row[2]) < 0.12, row
