"""A3 — rejuvenation policies driven by the aging detectors (in-sim).

The application the paper motivates: close the detection loop into a
rejuvenation controller.  Four policies run *inside* the simulation on
identical machines over the same horizon:

* ``none``        — let it crash;
* ``periodic``    — restart every T seconds (classical; needs a safely
  short T, wasting restarts);
* ``threshold``   — restart when free memory stays under a floor (the
  naive rule; acts close to death);
* ``predictive``  — restart when the *online multifractal monitor*
  raises the Hölder-shift alarm (the paper's method as a controller).

Shape claims: without a policy the host crashes; the predictive policy
survives the horizon; and it does so with no more restarts than the
safely-tuned periodic policy.
"""

from repro.memsim import Machine, MachineConfig, attach_policy
from repro.report import render_table

_HORIZON = 40_000.0
_SEEDS = (5, 6)

_POLICIES = [
    ("none", {}),
    ("periodic", {"interval": 3000.0}),
    ("threshold", {"floor_bytes": 12e6}),
    ("predictive", {}),
]


def _compute():
    rows = []
    for policy, kwargs in _POLICIES:
        crashes = 0
        restarts = 0
        survived_time = 0.0
        for seed in _SEEDS:
            machine = Machine(MachineConfig.nt4(seed=seed, max_run_seconds=_HORIZON))
            attach_policy(machine, policy, **kwargs)
            result = machine.run()
            crashes += int(result.crashed)
            restarts += len(result.rejuvenation_times)
            survived_time += result.duration
        rows.append([
            policy, len(_SEEDS), crashes, restarts,
            survived_time / (len(_SEEDS) * _HORIZON),
        ])
    return rows


def test_a3_rejuvenation(benchmark):
    rows = benchmark.pedantic(_compute, rounds=1, iterations=1)
    print("\n" + render_table(
        ["policy", "hosts", "crashes", "restarts", "uptime_fraction"],
        rows, title=f"A3: in-simulation rejuvenation policies over "
                    f"{_HORIZON:.0f}s horizons",
    ))

    by_name = {row[0]: row for row in rows}
    assert by_name["none"][2] == len(_SEEDS), "unprotected hosts must crash"
    assert by_name["predictive"][2] == 0, "predictive policy must avert crashes"
    # The periodic timer only works because its interval was hand-tuned
    # below the (unknown in practice) aging time; predictive adapts with
    # a comparable restart budget.
    assert by_name["predictive"][3] <= 1.5 * by_name["periodic"][3], \
        "predictive restart budget must stay comparable to the tuned timer"
    assert by_name["predictive"][4] > by_name["none"][4], \
        "predictive uptime must beat crash-and-burn"
