"""T1 — Hurst exponents of the memory counters, five estimators each.

Regenerates the paper's self-similarity table: every monitored memory
counter is long-range dependent (H > 0.5), agreeing across structurally
different estimators (R/S, aggregated variance, GPH periodogram,
wavelet variance, DFA).
"""

import numpy as np

from repro.fractal import hurst_summary
from repro.report import render_table
from repro.trace import fill_gaps, resample_uniform

_COUNTERS = ("AvailableBytes", "PageFaultsPerSec", "PagesPerSec")


def _compute(run):
    out = {}
    for name in _COUNTERS:
        counter = resample_uniform(fill_gaps(run.bundle[name]))
        values = counter.values
        if name == "AvailableBytes":
            values = np.diff(values)  # analyse the noise-like increments
        out[name] = hurst_summary(values)
    return out


def test_t1_hurst_table(benchmark, nt4_run):
    summaries = benchmark(_compute, nt4_run)

    rows = []
    for name, ests in summaries.items():
        rows.append([
            name,
            ests["rs"].h, ests["aggvar"].h, ests["gph"].h,
            ests["wavelet"].h, ests["dfa"].h,
        ])
    print("\n" + render_table(
        ["counter", "R/S", "AggVar", "GPH", "Wavelet", "DFA"],
        rows, title="T1: Hurst exponents of memory counters (five estimators)",
    ))

    # Shape claim: the activity counters are clearly LRD; estimators agree.
    for name in ("PageFaultsPerSec", "PagesPerSec"):
        ests = [e.h for e in summaries[name].values()]
        assert np.median(ests) > 0.55, f"{name} must be long-range dependent"
        # Different estimators react differently to the nonstationary
        # aging ramp in these counters; require broad agreement only.
        assert np.max(ests) - np.min(ests) < 0.6, f"{name} estimators disagree"
