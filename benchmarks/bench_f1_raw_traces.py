"""F1 — raw memory-counter traces over a stress-to-crash run.

Regenerates the paper's introductory figure: the raw `Available Bytes`
and `Pages/sec` traces of an instrumented host driven to crash by a
stress workload.  Shape claims checked here: available memory decays
noisily toward exhaustion with no sharp precursor, paging activity ramps
up as pressure grows, and both series end at the crash.
"""

import numpy as np

from repro.report import render_kv, render_series


def _figure(run):
    avail = run.bundle["AvailableBytes"].dropna()
    pages = run.bundle["PagesPerSec"].dropna()
    markers = [(run.crash_time, "crash")]
    chunks = [
        render_series(
            avail.values, title="F1a: AvailableBytes (bytes) over the run",
            x_values=avail.times, markers=markers,
        ),
        render_series(
            pages.values, title="F1b: PagesPerSec over the run",
            x_values=pages.times, markers=markers,
        ),
        render_kv(
            {
                "crash_time_s": run.crash_time,
                "crash_reason": run.crash_reason,
                "available_start_MB": avail.values[0] / 2**20,
                "available_end_MB": avail.values[-1] / 2**20,
                "pages_per_sec_first_decile": float(
                    np.mean(pages.values[: len(pages) // 10])),
                "pages_per_sec_last_decile": float(
                    np.mean(pages.values[-len(pages) // 10:])),
            },
            title="F1 summary",
        ),
    ]
    return "\n".join(chunks), avail, pages


def test_f1_raw_traces(benchmark, nt4_run):
    text, avail, pages = benchmark(_figure, nt4_run)
    print("\n" + text)

    # Shape assertions (the reproduction contract).
    n = len(avail)
    early = np.median(avail.values[: n // 10])
    late = np.median(avail.values[-n // 10:])
    assert late < early, "available memory must decay over the run"
    p = pages.values
    assert np.mean(p[-len(p) // 10:]) > 2 * np.mean(p[: len(p) // 10]) , \
        "paging must intensify as the host ages"
