"""F5 — log-scaling diagrams (fluctuation functions vs scale).

Regenerates the methodological figure behind every fractal analysis in
the paper: log2 F_q(s) against log2 s must be close to straight lines
over the analysed scale range, otherwise the exponents (Hurst, Hölder,
tau) are not defined.  Checked for the memory counter at q = -2, 0, 2.
"""

import numpy as np

from repro.fractal import mfdfa
from repro.report import render_series, render_table
from repro.stats import fit_line
from repro.trace import fill_gaps, resample_uniform

_Q = np.array([-2.0, 0.0, 2.0])


def _compute(run):
    counter = resample_uniform(fill_gaps(run.bundle["AvailableBytes"]))
    return mfdfa(np.diff(counter.values), q=_Q)


def test_f5_scaling_diagrams(benchmark, nt4_run):
    res = benchmark(_compute, nt4_run)
    log_s = np.log2(res.scales)

    rows = []
    for i, q in enumerate(res.q):
        log_f = np.log2(res.fluctuations[i])
        fit = fit_line(log_s, log_f)
        rows.append([f"q={q:+.0f}", fit.slope, fit.stderr_slope, fit.r_squared])
        print("\n" + render_series(
            log_f, title=f"F5: log2 F_q(s) vs scale index, q={q:+.0f}",
            width=60, height=8,
        ))
    print(render_table(
        ["moment", "h(q) slope", "stderr", "R^2"],
        rows, title="F5: scaling-law fits for AvailableBytes increments",
    ))

    # Shape claim: approximate power-law scaling across moments.  Real
    # (and realistically simulated) counters show mild scale breaks, so
    # the bar is R^2 > 0.85 rather than a laboratory-clean 0.99.
    for row in rows:
        assert row[3] > 0.85, f"scaling at {row[0]} is not a power law"
    # And q-dependence of the slope (multifractality) is visible.
    slopes = [row[1] for row in rows]
    assert slopes[0] > slopes[-1], "h(q) must decrease with q"
