"""F2 — local Hölder exponent trajectory of `Available Bytes`.

Regenerates the paper's central figure: the pointwise Hölder exponent
series ``h(t)`` of a memory counter over a stress-to-crash run.  Shape
claims: ``h(t)`` fluctuates around a stable level while the system is
healthy and degrades (shifts and destabilises) as the crash approaches
— the counter loses regularity under memory pressure.
"""

import numpy as np

from repro.core import holder_trajectory
from repro.report import render_kv, render_series
from repro.trace import fill_gaps, resample_uniform


def _compute(run):
    counter = resample_uniform(fill_gaps(run.bundle["AvailableBytes"]))
    return holder_trajectory(counter)


def test_f2_holder_trajectory(benchmark, nt4_run):
    traj = benchmark(_compute, nt4_run)
    h = traj.h
    t = traj.times
    n = h.size
    onset = nt4_run.bundle.metadata.get("first_failure_time", nt4_run.crash_time)

    print("\n" + render_series(
        h, title="F2: local Hölder exponent h(t) of AvailableBytes",
        x_values=t, markers=[(nt4_run.crash_time, "crash")],
    ))

    healthy = h[int(0.05 * n): int(0.25 * n)]
    aged = h[int(0.80 * n): int(0.98 * n)]
    print(render_kv(
        {
            "h_mean_healthy": float(np.mean(healthy)),
            "h_std_healthy": float(np.std(healthy)),
            "h_mean_aged": float(np.mean(aged)),
            "h_std_aged": float(np.std(aged)),
            "shift_in_baseline_sigmas": float(
                (np.mean(aged) - np.mean(healthy)) / np.std(healthy)),
        },
        title="F2 summary",
    ))

    # Shape assertion: the aged segment's regularity differs from the
    # healthy segment by a detectable margin (the paper's qualitative
    # claim; direction depends on the failure mode, magnitude must not).
    shift = abs(np.mean(aged) - np.mean(healthy)) / np.std(healthy)
    assert shift > 1.5, "aging must visibly move the Hölder trajectory"
