"""Shared fixtures for the experiment benchmarks.

Stress-to-crash fleets are expensive (seconds per run), so they are
session-scoped and shared across every experiment that consumes them —
which also mirrors the paper's setup, where one set of instrumented runs
feeds all the analyses.
"""

from __future__ import annotations

import pytest

from repro.memsim import Machine, MachineConfig, run_fleet
from repro.memsim.config import FaultConfig

NT4_FLEET_SIZE = 6
W2K_FLEET_SIZE = 4
HEALTHY_FLEET_SIZE = 6

NO_FAULTS = FaultConfig(
    heap_leak_fraction=0.0, pool_leak_rate=0.0, fragmentation_rate=0.0,
)


@pytest.fixture(scope="session")
def nt4_fleet():
    """NT4-profile stress-to-crash fleet (the paper's first testbed)."""
    results = run_fleet(MachineConfig.nt4(seed=1, max_run_seconds=80_000),
                        NT4_FLEET_SIZE)
    assert all(r.crashed for r in results)
    return results


@pytest.fixture(scope="session")
def w2k_fleet():
    """W2K-profile stress-to-crash fleet (the paper's second testbed)."""
    results = run_fleet(MachineConfig.w2k(seed=101, max_run_seconds=120_000),
                        W2K_FLEET_SIZE)
    assert all(r.crashed for r in results)
    return results


@pytest.fixture(scope="session")
def healthy_fleet():
    """Fault-free control fleet for false-alarm accounting."""
    results = [
        Machine(MachineConfig.nt4(seed=60 + i, max_run_seconds=15_000,
                                  faults=NO_FAULTS)).run()
        for i in range(HEALTHY_FLEET_SIZE)
    ]
    assert not any(r.crashed for r in results)
    return results


@pytest.fixture(scope="session")
def nt4_run(nt4_fleet):
    """The representative single crash run used by the figure benches."""
    return nt4_fleet[0]
