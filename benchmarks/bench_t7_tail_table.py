"""T7 — heavy-tail verification of the workload and its counters.

The multifractality of real web/OS traces is rooted in heavy-tailed
activity periods (the paper's era established this).  The simulator's
workload is built on Pareto(1.4) ON/OFF durations; this table verifies,
with the Hill estimator, that (i) the generated durations carry the
configured tail index and (ii) the resulting paging-burst sizes in the
counters are far heavier-tailed than an exponential benchmark.
"""

import numpy as np

from repro.memsim.config import WorkloadConfig
from repro.memsim.workloads import _pareto
from repro.report import render_table
from repro.stats import hill_estimator, tail_quantile_ratio


def _compute(run):
    rows = []
    rng = np.random.default_rng(123)
    workload = WorkloadConfig()

    durations = np.array([
        _pareto(rng, workload.pareto_shape, workload.mean_on)
        for _ in range(30_000)
    ])
    alpha, err = hill_estimator(durations, k=400)
    rows.append(["ON durations (generator)", workload.pareto_shape,
                 alpha, err, tail_quantile_ratio(durations)])

    # Counter marginals are *not* expected to be heavy: paging rates are
    # bounded by OS mechanics; the heavy-tailed durations manifest as
    # long-range dependence (T1), not fat marginals.  Reported for
    # completeness, asserted only to be light.
    pages = run.bundle["PagesPerSec"].dropna().values
    bursts = pages[pages > 0]
    alpha_b, err_b = hill_estimator(bursts)
    rows.append(["PagesPerSec bursts (counter)", float("nan"),
                 alpha_b, err_b, tail_quantile_ratio(bursts)])

    expo = rng.exponential(np.mean(durations), size=30_000)
    alpha_e, err_e = hill_estimator(expo, k=400)
    rows.append(["exponential benchmark", float("nan"),
                 alpha_e, err_e, tail_quantile_ratio(expo)])
    return rows


def test_t7_tail_table(benchmark, nt4_run):
    rows = benchmark.pedantic(_compute, args=(nt4_run,), rounds=1, iterations=1)
    print("\n" + render_table(
        ["sample", "configured alpha", "hill alpha", "stderr", "q999/q99"],
        rows, title="T7: heavy-tail verification (Hill estimator)",
    ))

    durations_row, counter_row, expo_row = rows
    assert abs(durations_row[2] - durations_row[1]) < 0.25, \
        "generator tail index must match the configuration"
    assert durations_row[4] > 2.0 * expo_row[4], \
        "generated durations must be much heavier-tailed than exponential"
    assert counter_row[2] > 3.0, \
        "counter marginals are rate-limited and must look light-tailed"
    assert expo_row[2] > 3.0, "the exponential benchmark must look light-tailed"
