"""F6 — evolution of the multifractal signature over a run's lifetime.

A sliding-window MFDFA over the `AvailableBytes` counter shows the
generalized Hurst exponent h(2) drifting as the host ages — the
continuous version of T2's two-segment comparison, and the figure-level
view of why the Hölder-based detectors work.  Shape claim: h(2) of the
final windows sits well below the early-window level in the
representative run.
"""

import numpy as np

from repro.fractal import sliding_mfdfa
from repro.report import render_kv, render_series
from repro.trace import fill_gaps, resample_uniform


def _compute(run):
    counter = resample_uniform(fill_gaps(run.bundle["AvailableBytes"]))
    return sliding_mfdfa(counter, window=2048, step=512)


def test_f6_sliding_spectrum(benchmark, nt4_run):
    result = benchmark.pedantic(_compute, args=(nt4_run,), rounds=1, iterations=1)

    print("\n" + render_series(
        result.h2, title="F6: sliding-window h(2) of AvailableBytes",
        x_values=result.times, markers=[(nt4_run.crash_time, "crash")],
        height=8,
    ))
    early = float(np.mean(result.h2[:2]))
    late = float(np.mean(result.h2[-2:]))
    print(render_kv(
        {
            "windows": len(result),
            "h2_early": early,
            "h2_late": late,
            "delta_h_early": float(np.mean(result.delta_h[:2])),
            "delta_h_late": float(np.mean(result.delta_h[-2:])),
        },
        title="F6 summary",
    ))

    assert late < early - 0.1, \
        "the generalized Hurst exponent must decay as the host ages"
