"""F3 — windowed Hölder moments with the crash-warning alarm.

Regenerates the paper's detection figure: the sliding-window moments of
``h(t)`` (the paper's second moment, plus the first moment that carries
the sharper signature on this substrate), with the calibrated detector's
alarm marked against the true crash time.
"""

import numpy as np

from repro.core import analyze_counter
from repro.report import render_kv, render_series


def _compute(run):
    return analyze_counter(run.bundle["AvailableBytes"])


def test_f3_holder_variance_alarm(benchmark, nt4_run):
    analysis = benchmark(_compute, nt4_run)
    ind = analysis.indicator.series
    alarm = analysis.alarm

    markers = [(nt4_run.crash_time, "crash")]
    if alarm.fired:
        markers.append((alarm.alarm_time, "warning"))
    print("\n" + render_series(
        ind.values,
        title=f"F3: windowed Hölder {analysis.indicator.statistic} of "
              "AvailableBytes with alarm",
        x_values=ind.times, markers=markers,
    ))
    print(render_kv(
        {
            "scheme": alarm.scheme,
            "baseline_mean": alarm.baseline_mean,
            "baseline_std": alarm.baseline_std,
            "calibration_end_s": alarm.calibration_end_time,
            "warning_time_s": alarm.alarm_time,
            "crash_time_s": nt4_run.crash_time,
            "lead_time_s": alarm.lead_time(nt4_run.crash_time),
        },
        title="F3 summary",
    ))

    assert alarm.fired, "the detector must warn on a crash run"
    lead = alarm.lead_time(nt4_run.crash_time)
    assert lead is not None and lead > 60.0, "warning must precede the crash"
    onset = nt4_run.bundle.metadata.get("first_failure_time", 0.0)
    assert alarm.alarm_time < onset, \
        "warning must precede the first allocation failure"
