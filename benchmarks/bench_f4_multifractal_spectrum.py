"""F4 — multifractal spectra of memory counters vs a monofractal control.

Regenerates the paper's spectrum figure: the singularity spectrum
f(alpha) of a memory counter is wide (multifractal), while a monofractal
control (fractional Brownian motion of matched length) yields a narrow
spectrum under the identical analysis chain.
"""

import numpy as np

from repro.fractal import legendre_spectrum, mfdfa
from repro.generators import fbm
from repro.report import render_kv, render_table
from repro.trace import fill_gaps, resample_uniform

_Q = np.linspace(-3.0, 3.0, 13)


def _spectrum_of(values):
    res = mfdfa(np.diff(values), q=_Q)
    return legendre_spectrum(res.q, res.tau)


def _compute(run):
    counter = resample_uniform(fill_gaps(run.bundle["AvailableBytes"]))
    n = len(counter)
    control = fbm(n, 0.8, rng=np.random.default_rng(4242))
    return _spectrum_of(counter.values), _spectrum_of(control)


def test_f4_multifractal_spectrum(benchmark, nt4_run):
    spec_counter, spec_control = benchmark(_compute, nt4_run)

    rows = []
    for label, spec in [("AvailableBytes", spec_counter),
                        ("fBm control (H=0.8)", spec_control)]:
        rows.append([
            label, spec.width, spec.alpha_peak, spec.asymmetry,
            float(np.min(spec.alpha)), float(np.max(spec.alpha)),
        ])
    print("\n" + render_table(
        ["series", "width", "alpha_peak", "asymmetry", "alpha_min", "alpha_max"],
        rows, title="F4: singularity spectra f(alpha)",
    ))
    print(render_kv(
        {"width_ratio_counter_over_control":
             spec_counter.width / max(spec_control.width, 1e-9)},
        title="F4 summary",
    ))

    # Shape claims: memory counters are multifractal, the Gaussian
    # self-similar control is not.
    assert spec_counter.width > 2.0 * spec_control.width, \
        "memory counter spectrum must be much wider than the fBm control"
    assert spec_counter.width > 0.3
