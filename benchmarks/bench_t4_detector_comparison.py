"""T4 — detector comparison: multifractal vs trend vs naive threshold.

Regenerates the paper's comparison against the classical
measurement-based approaches: the Hölder-moment CUSUM detector (the
paper's method), Vaidyanathan–Trivedi trend extrapolation, and the naive
raw-counter threshold, all scored on the same crash fleet and a healthy
control fleet.

Shape claims: (i) the multifractal detector detects at least as many
crashes as the naive threshold and warns earlier; (ii) its false-alarm
rate on healthy machines stays moderate; (iii) the naive threshold is
systematically late (small lead).
"""

import numpy as np

from repro.baselines import RawThresholdDetector, TrendExhaustionDetector
from repro.core import analyze_counter
from repro.report import render_table
from repro.stats import score_detections


def _multifractal_alarms(runs):
    return [analyze_counter(r.bundle["AvailableBytes"]).alarm.alarm_time
            for r in runs]


def _trend_alarms(runs):
    det = TrendExhaustionDetector(window_seconds=2400.0, step_seconds=300.0,
                                  horizon_seconds=4800.0)
    return [det.run(r.bundle["AvailableBytes"]).alarm_time for r in runs]


def _naive_alarms(runs):
    det = RawThresholdDetector(fraction_of_baseline=0.25, min_consecutive=20)
    return [det.run(r.bundle["AvailableBytes"]) for r in runs]


def _compute(crash_runs, healthy_runs):
    detectors = {
        "holder-cusum": _multifractal_alarms,
        "vt-trend": _trend_alarms,
        "naive-threshold": _naive_alarms,
    }
    out = {}
    crash_times = [r.crash_time for r in crash_runs]
    for name, fn in detectors.items():
        crash_alarms = fn(crash_runs)
        healthy_alarms = fn(healthy_runs)
        outcome = score_detections(crash_alarms, crash_times,
                                   min_lead=60.0, max_lead_fraction=0.95)
        false_alarms = sum(1 for a in healthy_alarms if a is not None)
        out[name] = (outcome, false_alarms, len(healthy_alarms))
    return out


def test_t4_detector_comparison(benchmark, nt4_fleet, healthy_fleet):
    results = benchmark.pedantic(_compute, args=(nt4_fleet, healthy_fleet), rounds=1, iterations=1)

    rows = []
    for name, (outcome, fa, n_healthy) in results.items():
        rows.append([
            name, outcome.n_runs, outcome.n_detected, outcome.n_premature,
            outcome.n_missed,
            outcome.median_lead_time if outcome.lead_times else float("nan"),
            f"{fa}/{n_healthy}",
        ])
    print("\n" + render_table(
        ["detector", "runs", "detected", "premature", "missed",
         "median_lead_s", "healthy_false_alarms"],
        rows, title="T4: detector comparison on the NT4 crash fleet",
    ))

    mf, __, __ = results["holder-cusum"]
    naive, __, __ = results["naive-threshold"]
    # Shape claims from the paper's comparison.
    assert mf.n_detected >= naive.n_detected, \
        "multifractal detector must detect at least as many crashes"
    if mf.lead_times and naive.lead_times:
        assert mf.median_lead_time > naive.median_lead_time, \
            "multifractal warnings must come earlier than the naive threshold"
    mf_fa = results["holder-cusum"][1]
    assert mf_fa <= len(healthy_fleet) // 2, \
        "false alarms on healthy machines must stay moderate"
