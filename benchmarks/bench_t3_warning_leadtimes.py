"""T3 — crash time vs warning time per run, both OS profiles.

Regenerates the paper's headline table: for every stress-to-crash run on
both testbeds, the time the multifractal detector raised its warning,
the time the host actually died, and the lead time.  Shape claims: a
warning fires in (almost) every run, it precedes the crash and the first
allocation failure, and the median lead is a substantial fraction of the
run.
"""

from repro.core import analyze_counter
from repro.report import render_kv, render_table
from repro.stats import score_detections


def _compute(fleets):
    rows = []
    for profile, fleet in fleets.items():
        for run in fleet:
            analysis = analyze_counter(run.bundle["AvailableBytes"])
            rows.append({
                "profile": profile,
                "seed": int(run.bundle.metadata["seed"]),
                "crash": run.crash_time,
                "onset": run.bundle.metadata["first_failure_time"],
                "alarm": analysis.alarm.alarm_time,
            })
    return rows


def test_t3_warning_leadtimes(benchmark, nt4_fleet, w2k_fleet):
    rows = benchmark.pedantic(_compute, args=({"nt4": nt4_fleet, "w2k": w2k_fleet},), rounds=1, iterations=1)

    table = []
    for r in rows:
        lead = (r["crash"] - r["alarm"]) if r["alarm"] is not None else None
        table.append([
            r["profile"], r["seed"], r["crash"],
            r["alarm"] if r["alarm"] is not None else "-",
            lead if lead is not None else "missed",
        ])
    print("\n" + render_table(
        ["profile", "seed", "crash_time_s", "warning_time_s", "lead_time_s"],
        table, title="T3: crash vs warning time per stress run",
    ))

    outcome = score_detections(
        [r["alarm"] for r in rows], [r["crash"] for r in rows],
        min_lead=60.0, max_lead_fraction=0.95,
    )
    print(render_kv(
        {
            "runs": outcome.n_runs,
            "detected": outcome.n_detected,
            "premature": outcome.n_premature,
            "missed": outcome.n_missed,
            "median_lead_s": outcome.median_lead_time,
            "mean_lead_s": outcome.mean_lead_time,
        },
        title="T3 aggregate",
    ))

    # Shape claims.
    assert outcome.detection_rate >= 0.8, "warnings must fire in >= 80% of runs"
    assert outcome.median_lead_time > 600.0, "median lead must be substantial"
