"""T8 — remaining-life forecasting from the aging indicator.

The follow-on question after a warning: *how long does the host have?*
A life model (indicator z-score -> remaining-life fraction) is fitted on
all-but-one run of the crash fleet and evaluated on the held-out run at
several truncation points.  Shape claims: mid-life predictions are
order-of-magnitude correct, and predicted urgency ranks truncations
correctly more often than not.
"""

import numpy as np

from repro.core import analyze_counter, fit_life_model, predict_remaining_life
from repro.report import render_kv, render_table

_FRACTIONS = (0.6, 0.75, 0.85)


def _compute(fleet):
    rows = []
    log_ratios = []
    for held_idx in range(min(3, len(fleet))):
        training = [
            (analyze_counter(r.bundle["AvailableBytes"]).indicator, r.crash_time)
            for i, r in enumerate(fleet) if i != held_idx
        ]
        model = fit_life_model(training)
        held = fleet[held_idx]
        for frac in _FRACTIONS:
            trunc = held.bundle["AvailableBytes"].slice_time(
                0, frac * held.crash_time)
            indicator = analyze_counter(trunc).indicator
            predicted = predict_remaining_life(model, indicator)
            actual = held.crash_time - trunc.times[-1]
            rows.append([
                int(held.bundle.metadata["seed"]), frac,
                predicted, actual, predicted / actual,
            ])
            log_ratios.append(abs(np.log(predicted / actual)))
    return rows, log_ratios


def test_t8_remaining_life(benchmark, nt4_fleet):
    rows, log_ratios = benchmark.pedantic(
        _compute, args=(nt4_fleet,), rounds=1, iterations=1)

    print("\n" + render_table(
        ["held-out seed", "life fraction", "predicted_s", "actual_s", "ratio"],
        rows, title="T8: held-out remaining-life predictions (mid-life regime)",
    ))
    print(render_kv(
        {
            "n_predictions": len(rows),
            "median_abs_log_ratio": float(np.median(log_ratios)),
            "worst_ratio": float(np.exp(np.max(log_ratios))),
        },
        title="T8 aggregate",
    ))

    # Shape claim: typical prediction within a factor of ~4 of truth in
    # the mid-life regime (this is a crude, assumption-light estimator;
    # see the module docstring for the accuracy envelope).
    assert float(np.median(log_ratios)) < np.log(4.0)
