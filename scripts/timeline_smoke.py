"""Timeline smoke: prove campaign history recording works end to end.

One chaos-injected parallel ``python -m repro campaign`` run with
``--timeline``, ``--costs`` and ``--status-port 0``, then checks:

1. **Live ring** — while units run, ``/timeline`` serves the recorder's
   in-memory ring as ``repro.timeline/1`` records.
2. **Artifact** — after the run the published JSONL stream validates
   (header first, monotone times), contains at least one ``retry``
   annotation (the chaos kills guarantee retries) and per-worker RSS
   series in its frames.
3. **Costs** — the ``repro.costs/1`` profile's phase wall shares sum to
   ~1.0 and name at least one cost center.
4. **Rebuild** — ``python -m repro timeline`` rebuilds the dashboard
   from the timeline artifact alone (no live session, no manifests).

Run from the repo root::

    PYTHONPATH=src python scripts/timeline_smoke.py [--max-seconds N]

Exit code 0 means every check passed.  Used by the CI ``timeline-smoke``
job and handy locally after touching the recorder or cost attribution.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs.timeline import (  # noqa: E402 - after sys.path setup
    read_timeline,
    timeline_summary,
)

URL_PATTERN = re.compile(r"http://127\.0\.0\.1:(\d+)/status")


def child_env() -> dict:
    env = dict(os.environ, PYTHONHASHSEED="0", PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p)
    return env


def scrape_json(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        return json.loads(resp.read())


def run_campaign(workdir: str, *, max_seconds: float) -> dict:
    """Run the chaos campaign; returns paths + live /timeline scrapes."""
    out = os.path.join(workdir, "campaign.json")
    timeline = os.path.join(workdir, "timeline.jsonl")
    costs = os.path.join(workdir, "costs.json")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "campaign",
         "--runs", "2", "--workers", "2", "--max-seconds", str(max_seconds),
         "--base-seed", "42", "--out", out,
         "--retries", "2", "--chaos", "kill=1,seed=5",
         "--timeline", timeline, "--timeline-every", "0.2",
         "--costs", costs, "--status-port", "0"],
        cwd=REPO_ROOT, env=child_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    port = None
    scrapes = []
    try:
        deadline = time.monotonic() + 120
        for line in proc.stdout:
            match = URL_PATTERN.search(line)
            if match:
                port = int(match.group(1))
                break
            if time.monotonic() > deadline:  # pragma: no cover
                raise SystemExit(
                    "FAIL [campaign]: no status URL announced in time")
        if port is None:
            raise SystemExit("FAIL [campaign]: campaign exited before "
                             "announcing its status URL")
        base = f"http://127.0.0.1:{port}"
        while proc.poll() is None:
            try:
                scrapes.append(scrape_json(base, "/timeline"))
            except OSError:
                break  # campaign finished and stopped its server mid-loop
            time.sleep(0.2)
    finally:
        proc.stdout.read()
        if proc.poll() is None:  # pragma: no cover - belt and braces
            proc.kill()
        proc.wait()
    if proc.returncode != 0:
        raise SystemExit(f"FAIL [campaign]: exited {proc.returncode}")
    return {"timeline": timeline, "costs": costs, "scrapes": scrapes}


def check_live_ring(scrapes: list) -> None:
    live = [s for s in scrapes if s.get("schema") == "repro.timeline/1"
            and s.get("records")]
    if not live:
        raise SystemExit("FAIL [live-ring]: /timeline never served the "
                         "recorder's ring; raise --max-seconds")
    first = live[-1]["records"][0]
    if first.get("kind") != "header":
        raise SystemExit(f"FAIL [live-ring]: ring starts with {first}")
    print(f"ok [live-ring]: {len(live)} scrape(s), last with "
          f"{len(live[-1]['records'])} record(s)")


def check_artifact(path: str) -> None:
    if not os.path.exists(path):
        raise SystemExit("FAIL [artifact]: campaign left no timeline file")
    records = read_timeline(path)
    summary = timeline_summary(records)  # validates the stream
    if summary["status"] != "complete":
        raise SystemExit(
            f"FAIL [artifact]: end status {summary['status']!r}")
    retries = summary["annotations_by_event"].get("retry", 0)
    if retries < 1:
        raise SystemExit(
            f"FAIL [artifact]: chaos kills produced no retry annotation "
            f"(events: {summary['annotations_by_event']})")
    worker_rss_frames = sum(
        1 for r in records
        if r.get("kind") == "frame"
        and any(isinstance(w.get("rss_bytes"), (int, float))
                for w in (r.get("resources") or {}).get("workers") or []))
    if worker_rss_frames < 1:
        raise SystemExit("FAIL [artifact]: no frame carries per-worker "
                         "RSS series")
    print(f"ok [artifact]: {summary['n_frames']} frame(s), "
          f"{retries} retry annotation(s), {worker_rss_frames} frame(s) "
          f"with worker RSS")


def check_costs(path: str) -> None:
    if not os.path.exists(path):
        raise SystemExit("FAIL [costs]: campaign left no cost profile")
    with open(path) as handle:
        costs = json.load(handle)
    if costs.get("schema") != "repro.costs/1":
        raise SystemExit(f"FAIL [costs]: bad schema {costs.get('schema')!r}")
    shares = [p["share"] for p in costs["phases"].values()
              if p.get("share") is not None]
    if not shares or not math.isclose(sum(shares), 1.0, rel_tol=1e-6):
        raise SystemExit(
            f"FAIL [costs]: phase shares sum to {sum(shares)!r}, not 1.0")
    if not costs.get("top_cost_centers"):
        raise SystemExit("FAIL [costs]: no cost centers attributed")
    top = costs["top_cost_centers"][0]
    print(f"ok [costs]: {len(shares)} phase(s) attributed, top center "
          f"{top['path']} ({top['phase']})")


def check_dashboard_rebuild(workdir: str, timeline: str) -> str:
    dashboard = os.path.join(workdir, "timeline.html")
    subprocess.run(
        [sys.executable, "-m", "repro", "timeline", timeline,
         "--dashboard", dashboard],
        check=True, cwd=REPO_ROOT, env=child_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    with open(dashboard) as handle:
        html = handle.read()
    if not html.startswith("<!DOCTYPE html>"):
        raise SystemExit("FAIL [rebuild]: dashboard is not a full page")
    if "Campaign timeline" not in html:
        raise SystemExit("FAIL [rebuild]: dashboard lacks timeline panels")
    print(f"ok [rebuild]: dashboard rebuilt from the artifact alone "
          f"({len(html)} bytes)")
    return dashboard


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-seconds", type=float, default=20_000.0,
                        help="simulated seconds per run "
                             "(default: %(default)s)")
    parser.add_argument("--keep-artifacts", metavar="DIR", default=None,
                        help="copy the timeline/costs/dashboard "
                             "artifacts here")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="timeline-smoke-") as workdir:
        print("phase 1/4: chaos campaign with --timeline --costs "
              "--status-port")
        paths = run_campaign(workdir, max_seconds=args.max_seconds)
        check_live_ring(paths["scrapes"])

        print("phase 2/4: published timeline artifact validates")
        check_artifact(paths["timeline"])

        print("phase 3/4: cost profile shares sum to 1.0")
        check_costs(paths["costs"])

        print("phase 4/4: dashboard rebuilt from the timeline file alone")
        dashboard = check_dashboard_rebuild(workdir, paths["timeline"])

        if args.keep_artifacts:
            os.makedirs(args.keep_artifacts, exist_ok=True)
            for source in (paths["timeline"], paths["costs"], dashboard):
                shutil.copy(source, args.keep_artifacts)

    print("timeline smoke passed: history recorded, costs attributed, "
          "dashboard rebuilt")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
