"""Chaos smoke: prove campaign execution survives SIGKILL, end to end.

Three phases, each compared against an uninterrupted reference run:

1. **Reference** — a calm ``python -m repro campaign`` producing the
   payload every other phase must reproduce byte-for-byte.
2. **Worker kill** — the same campaign with ``--chaos kill=1`` (every
   worker process ``os._exit``s mid-unit on its first attempt) and a
   retry budget: the pool must absorb the deaths and converge to the
   reference payload.
3. **Parent kill** — the campaign runs with a checkpoint journal and
   the *parent* process is SIGKILLed as soon as the journal shows
   completed units; ``--resume`` must then execute only the missing
   units and produce the reference payload.

Run from the repo root::

    PYTHONPATH=src python scripts/chaos_smoke.py [--max-seconds N]

Exit code 0 means every payload matched.  Used by the CI ``chaos-smoke``
job and handy locally after touching the resilience layer.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def campaign_cmd(out: str, *extra: str, max_seconds: float) -> list:
    return [
        sys.executable, "-m", "repro", "campaign",
        "--runs", "2", "--max-seconds", str(max_seconds),
        "--base-seed", "42", "--out", out, *extra,
    ]


def run(cmd: list) -> None:
    env = dict(os.environ, PYTHONHASHSEED="0")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p)
    subprocess.run(cmd, check=True, cwd=REPO_ROOT, env=env)


def journal_units(path: str) -> int:
    if not os.path.exists(path):
        return 0
    count = 0
    with open(path) as handle:
        for line in handle:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated in-flight line
            if record.get("kind") == "unit":
                count += 1
    return count


def assert_payloads_match(reference: str, candidate: str, label: str) -> None:
    with open(reference) as a, open(candidate) as b:
        ref, got = json.load(a), json.load(b)
    if ref != got:
        raise SystemExit(f"FAIL [{label}]: {candidate} differs from "
                         f"reference {reference}")
    print(f"ok [{label}]: payload bit-identical to uninterrupted reference")


def phase_parent_kill(workdir: str, reference: str,
                      *, max_seconds: float) -> None:
    journal = os.path.join(workdir, "journal.jsonl")
    resumed = os.path.join(workdir, "resumed.json")
    doomed = os.path.join(workdir, "doomed.json")

    env = dict(os.environ, PYTHONHASHSEED="0")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p)
    proc = subprocess.Popen(
        campaign_cmd(doomed, "--workers", "2", "--journal", journal,
                     max_seconds=max_seconds),
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 300
        while journal_units(journal) < 1:
            if proc.poll() is not None:
                raise SystemExit(
                    "FAIL [parent-kill]: campaign finished before any "
                    "journal unit was observed — cannot exercise the kill")
            if time.monotonic() > deadline:
                raise SystemExit(
                    "FAIL [parent-kill]: no journal unit appeared in time")
            time.sleep(0.05)
        proc.send_signal(signal.SIGKILL)
        proc.wait()
    finally:
        if proc.poll() is None:  # pragma: no cover - belt and braces
            proc.kill()
            proc.wait()

    completed = journal_units(journal)
    total = 4  # 2 cells x 2 runs
    print(f"parent SIGKILLed mid-campaign with {completed}/{total} "
          f"unit(s) journaled")
    if completed >= total:
        raise SystemExit(
            "FAIL [parent-kill]: every unit was already journaled before "
            "the kill landed; raise --max-seconds so units take longer")

    run(campaign_cmd(resumed, "--journal", journal, "--resume",
                     max_seconds=max_seconds))
    if journal_units(journal) < total:
        raise SystemExit("FAIL [parent-kill]: resume did not journal the "
                         "missing units")
    assert_payloads_match(reference, resumed, "parent-kill + resume")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-seconds", type=float, default=20_000.0,
                        help="simulated seconds per run "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as workdir:
        reference = os.path.join(workdir, "reference.json")
        print("phase 1/3: uninterrupted reference campaign")
        run(campaign_cmd(reference, max_seconds=args.max_seconds))

        print("phase 2/3: worker kills (--chaos kill=1) + retries")
        worker_kill = os.path.join(workdir, "worker-kill.json")
        run(campaign_cmd(worker_kill, "--workers", "2", "--retries", "2",
                         "--chaos", "kill=1,seed=5",
                         max_seconds=args.max_seconds))
        assert_payloads_match(reference, worker_kill, "worker-kill")

        print("phase 3/3: parent SIGKILL mid-campaign + --resume")
        phase_parent_kill(workdir, reference, max_seconds=args.max_seconds)

    print("chaos smoke passed: kills survived, resume bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
