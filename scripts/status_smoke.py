"""Status smoke: prove the campaign control plane works end to end.

Two phases against real ``python -m repro campaign`` subprocesses:

1. **Live scrape** — a 2-worker campaign with ``--status-port 0``; the
   bound URL is parsed from stdout and ``/healthz``, ``/status`` and
   ``/metrics`` are scraped while units run.  The status documents must
   be valid ``repro.status/1`` JSON with monotone progress, and the
   metrics pages valid OpenMetrics text.
2. **Flight record** — the same campaign with every worker chaos-killed
   on the first attempt and ``--flight-record``; after the run the
   artifact must parse as ``repro.flight-record/1`` with the failed
   units recorded.

Run from the repo root::

    PYTHONPATH=src python scripts/status_smoke.py [--max-seconds N]

Exit code 0 means every check passed.  Used by the CI ``status-smoke``
job and handy locally after touching the control plane.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

URL_PATTERN = re.compile(r"http://127\.0\.0\.1:(\d+)/status")


def campaign_cmd(out: str, *extra: str, max_seconds: float) -> list:
    return [
        sys.executable, "-u", "-m", "repro", "campaign",
        "--runs", "2", "--workers", "2", "--max-seconds", str(max_seconds),
        "--base-seed", "42", "--out", out, *extra,
    ]


def child_env() -> dict:
    env = dict(os.environ, PYTHONHASHSEED="0", PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p)
    return env


def scrape_json(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        return json.loads(resp.read())


def scrape_text(base: str, path: str) -> str:
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        return resp.read().decode()


def phase_live_scrape(workdir: str, *, max_seconds: float) -> None:
    out = os.path.join(workdir, "scraped.json")
    proc = subprocess.Popen(
        campaign_cmd(out, "--status-port", "0", "--self-watch",
                     max_seconds=max_seconds),
        cwd=REPO_ROOT, env=child_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    port = None
    try:
        deadline = time.monotonic() + 120
        for line in proc.stdout:
            match = URL_PATTERN.search(line)
            if match:
                port = int(match.group(1))
                break
            if time.monotonic() > deadline:  # pragma: no cover
                raise SystemExit(
                    "FAIL [live-scrape]: no status URL announced in time")
        if port is None:
            raise SystemExit("FAIL [live-scrape]: campaign exited before "
                             "announcing its status URL")
        base = f"http://127.0.0.1:{port}"

        health = scrape_json(base, "/healthz")
        if health != {"status": "ok"}:
            raise SystemExit(f"FAIL [live-scrape]: /healthz said {health}")

        statuses = []
        while proc.poll() is None:
            statuses.append(scrape_json(base, "/status"))
            metrics = scrape_text(base, "/metrics")
            if not metrics.endswith("# EOF\n"):
                raise SystemExit(
                    "FAIL [live-scrape]: /metrics is not OpenMetrics text")
            time.sleep(0.2)
    finally:
        proc.stdout.read()
        if proc.poll() is None:  # pragma: no cover - belt and braces
            proc.kill()
        proc.wait()

    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL [live-scrape]: campaign exited {proc.returncode}")
    if not statuses:
        raise SystemExit("FAIL [live-scrape]: campaign finished before any "
                         "/status scrape; raise --max-seconds")
    for payload in statuses:
        if payload.get("schema") != "repro.status/1":
            raise SystemExit(f"FAIL [live-scrape]: bad schema in {payload}")
    dones = [p["units_done"] for p in statuses]
    if dones != sorted(dones):
        raise SystemExit(f"FAIL [live-scrape]: progress not monotone: {dones}")
    if not os.path.exists(out):
        raise SystemExit("FAIL [live-scrape]: campaign wrote no results")
    print(f"ok [live-scrape]: {len(statuses)} scrape(s), progress "
          f"{dones[0]} -> {dones[-1]} of {statuses[-1]['total_units']}")


def phase_flight_record(workdir: str, *, max_seconds: float) -> None:
    out = os.path.join(workdir, "chaos.json")
    artifact = os.path.join(workdir, "flight.json")
    subprocess.run(
        campaign_cmd(out, "--retries", "2", "--chaos", "kill=1,seed=5",
                     "--flight-record", artifact, "--status-port", "0",
                     max_seconds=max_seconds),
        check=True, cwd=REPO_ROOT, env=child_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    if not os.path.exists(artifact):
        raise SystemExit("FAIL [flight-record]: chaos kills left no "
                         "flight-record artifact")
    with open(artifact) as handle:
        record = json.load(handle)
    if record.get("schema") != "repro.flight-record/1":
        raise SystemExit(
            f"FAIL [flight-record]: bad schema {record.get('schema')!r}")
    if record.get("reason") not in {"worker-death", "timeout-kill"}:
        raise SystemExit(
            f"FAIL [flight-record]: unexpected reason {record.get('reason')!r}")
    if not record.get("records"):
        raise SystemExit("FAIL [flight-record]: artifact has no records")
    if not record.get("trace_id"):
        raise SystemExit("FAIL [flight-record]: artifact missing trace id")
    print(f"ok [flight-record]: {record['reason']} dump with "
          f"{len(record['records'])} record(s), trace {record['trace_id']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-seconds", type=float, default=20_000.0,
                        help="simulated seconds per run "
                             "(default: %(default)s)")
    parser.add_argument("--keep-artifacts", metavar="DIR", default=None,
                        help="copy the flight-record artifact here")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="status-smoke-") as workdir:
        print("phase 1/2: live /status + /metrics scrape of a running "
              "campaign")
        phase_live_scrape(workdir, max_seconds=args.max_seconds)

        print("phase 2/2: chaos-killed workers leave a flight record")
        phase_flight_record(workdir, max_seconds=args.max_seconds)

        if args.keep_artifacts:
            os.makedirs(args.keep_artifacts, exist_ok=True)
            source = os.path.join(workdir, "flight.json")
            with open(source) as src, open(
                    os.path.join(args.keep_artifacts, "flight.json"),
                    "w") as dst:
                dst.write(src.read())

    print("status smoke passed: live surface served, flight record written")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
