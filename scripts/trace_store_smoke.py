"""Trace-store smoke: prove the columnar store works at campaign scale.

Three phases:

1. **64-run columnar campaign** — a 64-host vector fleet is simulated
   and every run's trace is written twice through ``write_bundle``: once
   as a columnar run directory, once as CSV.  Each store must read back
   bit-exact (times, values, units, metadata — with native JSON types).
2. **Analysis rebuild from the store alone** — every run is re-analysed
   twice with ``evaluate_detector``, once from the columnar store and
   once from the CSV file, with nothing shared but the path.  The two
   JSON payloads (alarm times, lead times, sample counts) must be
   byte-identical.
3. **Read-throughput gate** — the bench harness's ``trace.store`` case
   (quick), whose setup itself enforces the >=5x columnar-over-CSV read
   floor, compared against the committed baselines.

Run from the repo root::

    PYTHONPATH=src python scripts/trace_store_smoke.py [--runs N]

Exit code 0 means every check passed.  Used by the CI
``trace-store-smoke`` job and handy locally after touching the trace
codecs, the store layout or the Hölder engine registry.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

MAX_RUN_SECONDS = 12_000.0


def child_env() -> dict:
    env = dict(os.environ, PYTHONHASHSEED="0", PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p)
    return env


def run(cmd: list) -> str:
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=child_env(),
                          capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL: {' '.join(cmd[-8:])} exited {proc.returncode}\n"
            f"{proc.stdout}\n{proc.stderr}")
    return proc.stdout


def simulate(n_runs: int):
    from repro.memsim import MachineConfig, VectorFleet

    config = MachineConfig.nt4(seed=31, max_run_seconds=MAX_RUN_SECONDS)
    return VectorFleet(config, n_runs).run()


def phase_store(results, workdir: str) -> tuple:
    import numpy as np

    from repro.trace import is_columnar_store, read_bundle, write_bundle

    store_paths, csv_paths = [], []
    for index, result in enumerate(results):
        store = write_bundle(
            result.bundle, os.path.join(workdir, f"store/run{index:04d}"))
        csv = write_bundle(
            result.bundle, os.path.join(workdir, f"csv/run{index:04d}.csv"))
        if not is_columnar_store(store):
            raise SystemExit(f"FAIL [store]: {store} is not a columnar store")
        store_paths.append(store)
        csv_paths.append(csv)

    for result, store in zip(results, store_paths):
        back = read_bundle(store)
        if back.names != result.bundle.names:
            raise SystemExit(f"FAIL [store]: counter set changed in {store}")
        for name in back.names:
            orig, col = result.bundle[name], back[name]
            if not (np.array_equal(orig.times, col.times)
                    and np.array_equal(orig.values, col.values,
                                       equal_nan=True)
                    and orig.units == col.units):
                raise SystemExit(
                    f"FAIL [store]: {name!r} not bit-exact in {store}")
        for key, value in result.bundle.metadata.items():
            got = back.metadata.get(key)
            if got != value or type(got) is not type(value):
                raise SystemExit(
                    f"FAIL [store]: metadata {key!r} changed: "
                    f"{value!r} -> {got!r}")
    n_counters = len(results[0].bundle.names)
    print(f"ok [store]: {len(results)} runs x {n_counters} counters "
          f"written columnar + CSV; columnar read back bit-exact with "
          f"typed metadata")
    return store_paths, csv_paths


def _payload(paths) -> str:
    """Analysis payload built from trace paths alone (JSON, sorted)."""
    import numpy as np

    from repro.analysis.campaign import ExperimentSpec
    from repro.analysis.detector_registry import evaluate_detector
    from repro.trace import read_bundle

    spec = ExperimentSpec(name="smoke")
    payload = []
    for path in paths:
        bundle = read_bundle(path)
        evaluation = evaluate_detector(spec.detector_name, bundle, spec,
                                       collect_scores=False)
        crash_time = bundle.metadata.get("crash_time")
        lead = (crash_time - evaluation.alarm_time
                if crash_time is not None
                and evaluation.alarm_time is not None else None)
        payload.append({
            # Finite samples only: the CSV codec unions counter grids
            # (gap rows are NaN) while the store keeps native grids, so
            # raw lengths legitimately differ between codecs.
            "n_samples": int(np.isfinite(
                bundle[spec.counter].values).sum()),
            "crash_time": crash_time,
            "alarm_time": evaluation.alarm_time,
            "lead_time": lead,
        })
    return json.dumps(payload, sort_keys=True)


def phase_analysis(store_paths, csv_paths) -> None:
    from_store = _payload(store_paths)
    from_csv = _payload(csv_paths)
    if from_store != from_csv:
        raise SystemExit(
            "FAIL [analysis]: payload rebuilt from the columnar store "
            "differs from the CSV path:\n"
            f"store: {from_store[:400]}\n  csv: {from_csv[:400]}")
    alarms = sum(1 for entry in json.loads(from_store)
                 if entry["alarm_time"] is not None)
    print(f"ok [analysis]: {len(store_paths)} runs re-analysed from the "
          f"store alone; payload byte-identical to the CSV path "
          f"({alarms} alarms)")


def phase_bench() -> None:
    with tempfile.TemporaryDirectory(prefix="trace-store-bench-") as out:
        stdout = run([
            sys.executable, "-m", "repro", "bench", "--quick",
            "--select", "trace.store", "--repeats", "1", "--no-memory",
            "--out", out,
            "--baseline", os.path.join("benchmarks", "baselines"),
            "--threshold", "0.25",
        ])
    if "trace.store" not in stdout:
        raise SystemExit("FAIL [bench]: trace.store case did not run")
    print("ok [bench]: trace.store gate passed (>=5x columnar read "
          "throughput enforced in case setup)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=64,
                        help="campaign size (default: %(default)s)")
    parser.add_argument("--skip-bench", action="store_true",
                        help="skip the read-throughput gate phase")
    args = parser.parse_args(argv)

    print(f"phase 1/3: {args.runs}-run columnar campaign (vector fleet)")
    results = simulate(args.runs)
    with tempfile.TemporaryDirectory(prefix="trace-store-smoke-") as workdir:
        store_paths, csv_paths = phase_store(results, workdir)

        print("phase 2/3: analysis rebuild from the store alone")
        phase_analysis(store_paths, csv_paths)

    if args.skip_bench:
        print("phase 3/3: skipped (--skip-bench)")
    else:
        print("phase 3/3: columnar read-throughput gate (bench trace.store)")
        phase_bench()

    print("trace-store smoke passed: columnar campaign, analysis rebuild "
          "and read gate all good")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
