"""Fleet-vector smoke: prove the vectorised engine works end to end.

Three phases:

1. **128-host vector fleet** — in-process `VectorFleet` run: every host
   finishes (crash or survive-to-budget), invariants hold, the
   `memsim_vec.*` telemetry namespace is published, and a sharded
   `run_fleet_vector(workers=2)` run is bit-identical to `workers=1`.
2. **Campaign payload diff** — ``repro campaign --engine vector`` and
   ``--engine object`` against real ``python -m repro`` subprocesses:
   the vector payload must be structurally identical to the object
   reference (same cells, seeds, run counts, JSON shape), and the
   vector campaign must report the same crash behaviour class (the
   aging cell crashes, the healthy control does not).
3. **Throughput gate** — the bench harness's ``memsim.fleet_vec`` case
   (quick), whose setup itself enforces the >=10x hosts/sec floor over
   the object path.

Run from the repo root::

    PYTHONPATH=src python scripts/fleet_vec_smoke.py [--hosts N]

Exit code 0 means every check passed.  Used by the CI
``fleet-vec-smoke`` job and handy locally after touching the fleet
engine, the batched RNG or the campaign presimulation path.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def child_env() -> dict:
    env = dict(os.environ, PYTHONHASHSEED="0", PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p)
    return env


def run(cmd: list) -> str:
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=child_env(),
                          capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL: {' '.join(cmd[-8:])} exited {proc.returncode}\n"
            f"{proc.stdout}\n{proc.stderr}")
    return proc.stdout


def phase_fleet(n_hosts: int) -> None:
    from dataclasses import replace

    import numpy as np

    from repro.memsim import MachineConfig, VectorFleet, run_fleet_vector
    from repro.obs import session as _obs

    base = MachineConfig.nt4(seed=5, max_run_seconds=4_000.0)
    config = replace(base, faults=base.faults.scaled(6.0))

    with _obs.telemetry_session() as session:
        fleet = VectorFleet(config, n_hosts)
        results = fleet.run()
        fleet.check_invariants()
        counters = session.metrics.snapshot()
    if len(results) != n_hosts:
        raise SystemExit(f"FAIL [fleet]: {len(results)} results "
                         f"for {n_hosts} hosts")
    crashed = sum(1 for r in results if r.crashed)
    for r in results:
        if r.crashed and not (0.0 < r.crash_time <= 4_000.0):
            raise SystemExit(f"FAIL [fleet]: crash time {r.crash_time}")
        if r.bundle.metadata.get("engine") != "vector":
            raise SystemExit("FAIL [fleet]: missing engine metadata")
    if counters.get("memsim_vec.hosts", {}).get("value") != n_hosts:
        raise SystemExit("FAIL [fleet]: memsim_vec.hosts counter not published")
    if counters.get("memsim_vec.host_ticks", {}).get("value", 0) <= 0:
        raise SystemExit("FAIL [fleet]: memsim_vec.host_ticks not published")

    seq = run_fleet_vector(config, 8, workers=1)
    par = run_fleet_vector(config, 8, workers=2)
    for a, b in zip(seq, par):
        if (a.crashed, a.crash_time, a.crash_reason) != \
                (b.crashed, b.crash_time, b.crash_reason):
            raise SystemExit("FAIL [fleet]: worker sharding changed a crash")
        for name in a.bundle.names:
            if not (np.array_equal(a.bundle[name].times, b.bundle[name].times)
                    and np.array_equal(a.bundle[name].values,
                                       b.bundle[name].values)):
                raise SystemExit(
                    f"FAIL [fleet]: worker sharding perturbed {name!r}")
    print(f"ok [fleet]: {n_hosts} hosts, {crashed} crashed, invariants + "
          f"memsim_vec.* telemetry + shard bit-identity")


def _campaign(engine: str, out: str) -> dict:
    run([
        sys.executable, "-m", "repro", "campaign",
        "--runs", "4", "--max-seconds", "20000",
        "--base-seed", "11", "--engine", engine, "--out", out,
    ])
    with open(out) as handle:
        return json.load(handle)


def _structure(payload, key="") -> object:
    """The JSON shape with simulated values erased.

    Dict keys, the per-cell run-list arity and per-run seeds survive;
    leaf values (crash times, leads, alarm presence) and variable-length
    aggregate lists (e.g. ``lead_times``) do not — those legitimately
    differ between statistically-equivalent engines.  ``engine`` is
    erased too: it is the one spec field *meant* to differ.
    """
    if isinstance(payload, dict):
        return {k: (v if k == "seed" else _structure(v, k))
                for k, v in sorted(payload.items()) if k != "engine"}
    if isinstance(payload, list):
        if key == "runs":
            return [_structure(v, key) for v in payload]
        return "list"
    return "scalar"


def phase_campaign(workdir: str) -> None:
    vec = _campaign("vector", os.path.join(workdir, "vector.json"))
    obj = _campaign("object", os.path.join(workdir, "object.json"))
    if _structure(vec) != _structure(obj):
        raise SystemExit(
            "FAIL [campaign]: vector payload structure differs from the "
            "object reference")
    def runs_of(payload, cell_suffix):
        for name, cell in payload["cells"].items():
            if name.endswith(cell_suffix):
                return cell.get("runs", [])
        return []

    aging_runs = runs_of(vec, "-aging")
    healthy_runs = runs_of(vec, "-healthy")
    if not aging_runs or not healthy_runs:
        raise SystemExit("FAIL [campaign]: cells missing from vector payload")
    if not any(r.get("crashed") for r in aging_runs):
        raise SystemExit("FAIL [campaign]: vector aging cell never crashed")
    if any(r.get("crashed") for r in healthy_runs):
        raise SystemExit("FAIL [campaign]: vector healthy control crashed")
    obj_aging = runs_of(obj, "-aging")
    if [r["seed"] for r in aging_runs] != [r["seed"] for r in obj_aging]:
        raise SystemExit("FAIL [campaign]: engines disagree on seed layout")
    print(f"ok [campaign]: vector payload structurally identical to object "
          f"reference ({len(aging_runs)} aging + {len(healthy_runs)} healthy "
          f"runs); aging crashed, control survived")


def phase_bench() -> None:
    with tempfile.TemporaryDirectory(prefix="fleet-vec-bench-") as out:
        stdout = run([
            sys.executable, "-m", "repro", "bench", "--quick",
            "--select", "memsim.fleet_vec", "--repeats", "1",
            "--no-memory", "--out", out, "--no-compare",
        ])
    if "memsim.fleet_vec" not in stdout:
        raise SystemExit("FAIL [bench]: fleet_vec case did not run")
    print("ok [bench]: memsim.fleet_vec gate passed (>=10x hosts/sec floor "
          "enforced in case setup)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--hosts", type=int, default=128,
                        help="vector fleet size for phase 1 "
                             "(default: %(default)s)")
    parser.add_argument("--skip-bench", action="store_true",
                        help="skip the throughput-gate phase")
    args = parser.parse_args(argv)

    print(f"phase 1/3: {args.hosts}-host vector fleet")
    phase_fleet(args.hosts)

    with tempfile.TemporaryDirectory(prefix="fleet-vec-smoke-") as workdir:
        print("phase 2/3: campaign payload diff (vector vs object engine)")
        phase_campaign(workdir)

    if args.skip_bench:
        print("phase 3/3: skipped (--skip-bench)")
    else:
        print("phase 3/3: vector throughput gate (bench memsim.fleet_vec)")
        phase_bench()

    print("fleet-vec smoke passed: fleet, campaign wiring and throughput "
          "gate all good")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
