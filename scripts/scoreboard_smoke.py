"""Scoreboard smoke: prove the detector tournament works end to end.

Two phases against real ``python -m repro`` subprocesses:

1. **Grid campaign** — ``repro campaign --detectors holder,trend,entropy``
   over the default aging/healthy cells (3 detector families × 2 cells).
   The run must write a valid ``repro.scoreboard/1`` artifact with every
   family scored (finite AUC where an ROC sweep exists), print the
   league table, and render a dashboard containing the tournament
   section as self-contained HTML.
2. **Rebuild from artifacts** — ``repro scoreboard results.json`` must
   reproduce the exact same scoreboard from the saved campaign results
   alone (no re-simulation), and export it as OpenMetrics text.

Run from the repo root::

    PYTHONPATH=src python scripts/scoreboard_smoke.py [--max-seconds N]

Exit code 0 means every check passed.  Used by the CI
``scoreboard-smoke`` job and handy locally after touching the registry,
scoreboard or their CLI surfaces.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DETECTORS = ("holder", "trend", "entropy")


def child_env() -> dict:
    env = dict(os.environ, PYTHONHASHSEED="0", PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p)
    return env


def run(cmd: list) -> str:
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=child_env(),
                          capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL: {' '.join(cmd[-6:])} exited {proc.returncode}\n"
            f"{proc.stdout}\n{proc.stderr}")
    return proc.stdout


def check_scoreboard(path: str) -> dict:
    with open(path) as handle:
        board = json.load(handle)
    if board.get("schema") != "repro.scoreboard/1":
        raise SystemExit(
            f"FAIL [campaign]: bad scoreboard schema {board.get('schema')!r}")
    if set(board["detectors"]) != set(DETECTORS):
        raise SystemExit(
            f"FAIL [campaign]: expected families {DETECTORS}, "
            f"got {sorted(board['detectors'])}")
    if board["n_cells"] != 2 * len(DETECTORS):
        raise SystemExit(
            f"FAIL [campaign]: expected {2 * len(DETECTORS)} grid cells, "
            f"got {board['n_cells']}")
    for name, det in board["detectors"].items():
        if det["crashed"] < 1:
            raise SystemExit(
                f"FAIL [campaign]: no crashes scored for {name!r} -- "
                "raise --max-seconds")
        if det["roc"] is None:
            raise SystemExit(
                f"FAIL [campaign]: {name!r} has no ROC sweep "
                "(missing peak statistics?)")
        auc = det["auc"]
        if auc is None or not math.isfinite(auc) or not 0.0 <= auc <= 1.0:
            raise SystemExit(f"FAIL [campaign]: {name!r} AUC is {auc!r}")
    return board


def phase_grid_campaign(workdir: str, *, max_seconds: float) -> dict:
    out = os.path.join(workdir, "results.json")
    sb = os.path.join(workdir, "scoreboard.json")
    dash = os.path.join(workdir, "dashboard.html")
    stdout = run([
        sys.executable, "-m", "repro", "campaign",
        "--runs", "2", "--max-seconds", str(max_seconds),
        "--base-seed", "42", "--detectors", ",".join(DETECTORS),
        "--out", out, "--scoreboard", sb, "--dashboard", dash,
    ])
    if "Detector tournament" not in stdout:
        raise SystemExit("FAIL [campaign]: no league table on stdout")
    board = check_scoreboard(sb)

    html = open(dash).read()
    if not html.startswith("<!DOCTYPE html>"):
        raise SystemExit("FAIL [campaign]: dashboard is not an HTML document")
    if "Detector tournament" not in html or "<svg" not in html:
        raise SystemExit(
            "FAIL [campaign]: dashboard lacks the tournament section")
    for name in DETECTORS:
        if name not in html:
            raise SystemExit(
                f"FAIL [campaign]: detector {name!r} missing from dashboard")

    aucs = ", ".join(f"{name}={board['detectors'][name]['auc']:.3f}"
                     for name in sorted(board["detectors"]))
    print(f"ok [campaign]: {board['n_cells']} grid cells scored ({aucs}); "
          f"dashboard {len(html)} bytes")
    return board


def phase_rebuild(workdir: str, board: dict) -> None:
    results = os.path.join(workdir, "results.json")
    rebuilt_path = os.path.join(workdir, "rebuilt.json")
    prom = os.path.join(workdir, "scoreboard.prom")
    run([
        sys.executable, "-m", "repro", "scoreboard", results,
        "-o", rebuilt_path, "--prom", prom,
    ])
    with open(rebuilt_path) as handle:
        rebuilt = json.load(handle)
    if rebuilt != board:
        raise SystemExit(
            "FAIL [rebuild]: scoreboard rebuilt from saved results differs "
            "from the campaign's own artifact")
    text = open(prom).read()
    if not text.endswith("# EOF\n"):
        raise SystemExit("FAIL [rebuild]: export is not OpenMetrics text")
    if "repro_scoreboard_auc" not in text or 'detector="holder"' not in text:
        raise SystemExit("FAIL [rebuild]: export lacks scoreboard families")
    print(f"ok [rebuild]: artifact-only rebuild identical; "
          f"{len(text.splitlines())} OpenMetrics lines")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-seconds", type=float, default=20_000.0,
                        help="simulated seconds per aging run "
                             "(default: %(default)s)")
    parser.add_argument("--keep-artifacts", metavar="DIR", default=None,
                        help="copy the scoreboard artifacts here")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="scoreboard-smoke-") as workdir:
        print(f"phase 1/2: grid campaign ({len(DETECTORS)} detector "
              f"families x 2 cells)")
        board = phase_grid_campaign(workdir, max_seconds=args.max_seconds)

        print("phase 2/2: rebuild the scoreboard from saved results alone")
        phase_rebuild(workdir, board)

        if args.keep_artifacts:
            os.makedirs(args.keep_artifacts, exist_ok=True)
            for name in ("scoreboard.json", "scoreboard.prom",
                         "dashboard.html"):
                shutil.copyfile(os.path.join(workdir, name),
                                os.path.join(args.keep_artifacts, name))

    print("scoreboard smoke passed: tournament scored, artifact rebuilt, "
          "dashboard rendered")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
